/// \file
/// Compact binary encoding of one InjectionRecord -- the payload format of
/// the binary shard store (core/binary_store.h). Counters are LEB128
/// varints, the outcome is one byte, the description is length-prefixed
/// raw bytes, and the two doubles are fixed-width little-endian bit
/// patterns, so signed zeros, NaN payloads, and every extreme value
/// round-trip exactly (the same representation-equality discipline as
/// util/bits.h).
///
/// Error contract: decode_record throws std::runtime_error on ANY
/// malformed payload -- truncation, an over-long varint, an unknown
/// outcome byte, trailing bytes -- and never reads out of bounds
/// (tests/format_fuzz_test.cpp byte-storms it under ASan/UBSan). The
/// encoding is canonical: encode_record(decode_record(p)) == p for every
/// accepted payload, which is what lets the store checksum payload bytes
/// instead of parsed fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/campaign_stats.h"

namespace drivefi::core {

/// Appends `value` to `out` as an unsigned LEB128 varint (7 value bits
/// per byte, high bit = continuation; at most 10 bytes for 64 bits).
void put_varint(std::string* out, std::uint64_t value);

/// Reads one varint from `data` starting at `*pos`, advancing `*pos` past
/// it. Returns false -- without advancing -- when the buffer ends before
/// the varint does (truncation). Throws std::runtime_error on an over-long
/// or non-canonical encoding (more than 10 bytes, or bits beyond the
/// 64th), so every value has exactly one accepted spelling.
bool get_varint(std::string_view data, std::size_t* pos, std::uint64_t* value);

/// Appends the 8-byte little-endian bit pattern of `value`.
void put_double_bits(std::string* out, double value);

/// Reads an 8-byte little-endian double bit pattern at `*pos`, advancing
/// past it. Returns false on truncation.
bool get_double_bits(std::string_view data, std::size_t* pos, double* value);

/// Encodes one record as a self-contained payload (no framing):
///   varint run_index | varint scenario_index | varint scene_index |
///   u8 outcome | varint description_size | description bytes |
///   f64le min_delta_lon | f64le max_actuation_divergence
std::string encode_record(const InjectionRecord& record);

/// Inverse of encode_record. Throws std::runtime_error (naming the bad
/// field) on truncated, corrupt, or trailing bytes; bit-exact on the
/// doubles.
InjectionRecord decode_record(std::string_view payload);

}  // namespace drivefi::core
