/// \file
/// The binary record store: a compact, seekable, crash-tolerant container
/// for campaign run records, with the exact manifest/compatibility
/// semantics of the JSONL ShardResultStore. JSONL remains the canonical
/// interchange -- a binary store reads back to the same InjectionRecords
/// bit-for-bit, so merge_shards + write_merged_jsonl over binary (or
/// mixed-format) shards is byte-identical to the JSONL path (enforced by
/// tests/determinism_test.cpp).
///
/// On-disk layout (normative spec: docs/FORMATS.md "Binary record store"):
///
///   magic   8 bytes "DFIBREC1"
///   frames  each frame: u8 kind | varint payload_size | payload bytes |
///           u32le FNV-1a64-low32 checksum of the payload
///     kind 'M' (one, first): payload is the manifest's canonical JSONL
///           text -- the SAME bytes as the JSONL store's header line, so
///           manifest identity/compatibility can never fork per format.
///     kind 'R': payload is one record_codec-encoded InjectionRecord.
///     kind 'I' (at most one, last): the index footer, followed by the
///           16-byte trailer: "DFIXEND1" + u64le file offset of the 'I'
///           frame. Payload: varint record_count, then per record (sorted
///           by run_index) varint run_index delta + varint absolute file
///           offset of its 'R' frame; then 4 outcome postings lists
///           (varint count + varint run_index deltas each); then varint
///           scenario count, and per scenario varint scenario_index +
///           varint count + varint run_index deltas.
///
/// Crash safety mirrors the JSONL store: appends write one complete 'R'
/// frame and flush, so a crash leaves every durable record plus at most
/// one torn trailing frame, which reopening (kResume) truncates. The
/// index footer exists only on cleanly closed stores -- finalize() (or the
/// destructor) writes it, reopening for append truncates it first and
/// close writes a fresh one. Readers never REQUIRE the footer: a store
/// killed mid-append still reads fully via a frame scan.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/result_store.h"

namespace drivefi::core {

/// Leading bytes of every binary store file.
inline constexpr std::array<char, 8> kBinaryStoreMagic = {
    'D', 'F', 'I', 'B', 'R', 'E', 'C', '1'};
/// Leading bytes of the fixed-size trailer that locates the index footer.
inline constexpr std::array<char, 8> kBinaryIndexMagic = {
    'D', 'F', 'I', 'X', 'E', 'N', 'D', '1'};

/// Frame kind bytes.
inline constexpr char kFrameManifest = 'M';
inline constexpr char kFrameRecord = 'R';
inline constexpr char kFrameIndex = 'I';

/// True when the file at `path` starts with kBinaryStoreMagic (sniffs 8
/// bytes; false for missing/short files).
bool is_binary_store(const std::string& path);

/// The parsed index footer: O(1)-seek structures over one store file.
struct BinaryStoreIndex {
  /// run_index -> byte offset of the record's 'R' frame (kind byte).
  std::map<std::size_t, std::uint64_t> offset_by_run;
  /// Outcome ordinal -> ascending run indices with that outcome.
  std::array<std::vector<std::size_t>, 4> runs_by_outcome;
  /// scenario_index -> ascending run indices of that scenario.
  std::map<std::size_t, std::vector<std::size_t>> runs_by_scenario;

  std::string encode() const;
  /// Throws std::runtime_error on malformed payload bytes.
  static BinaryStoreIndex decode(std::string_view payload);
};

/// Append-only, crash-tolerant binary result store for one shard.
/// Open-mode semantics (kFresh clobber refusal, kResume manifest check +
/// torn-tail truncation, kOverwrite) are identical to ShardResultStore.
class BinaryShardStore final : public ShardStore {
 public:
  BinaryShardStore(std::string path, const CampaignManifest& manifest,
                   StoreOpenMode mode = StoreOpenMode::kFresh);
  /// Finalizes (writes the index footer) when the store is still open;
  /// swallows write errors -- call finalize() yourself to observe them.
  ~BinaryShardStore() override;

  const std::string& path() const override { return path_; }
  const CampaignManifest& manifest() const override { return manifest_; }
  const std::set<std::size_t>& completed() const override {
    return completed_;
  }

  /// Appends one record frame and flushes it to the OS. Same error
  /// contract as ShardResultStore::append.
  void append(const InjectionRecord& record) override;

  /// Writes the index footer + trailer and closes the file. Idempotent;
  /// append() after finalize() throws. Throws std::runtime_error on write
  /// failure.
  void finalize();

 private:
  std::string path_;
  CampaignManifest manifest_;
  std::set<std::size_t> completed_;
  BinaryStoreIndex index_;
  std::ofstream out_;
  std::uint64_t write_offset_ = 0;  ///< next frame's file offset
  bool finalized_ = false;
};

/// Random-access reader over one binary store file. Loads the index
/// footer when the trailer is present and valid, otherwise rebuilds the
/// same index with a full frame scan -- lookups behave identically either
/// way, sealed or torn.
class BinaryStoreReader {
 public:
  /// Opens and validates `path` (manifest frame + index). Throws
  /// std::runtime_error on a missing file or corrupt content.
  explicit BinaryStoreReader(const std::string& path);

  const CampaignManifest& manifest() const { return manifest_; }
  const BinaryStoreIndex& index() const { return index_; }
  std::size_t record_count() const { return index_.offset_by_run.size(); }
  /// Whether the on-disk index footer was used (false = scan rebuild).
  bool used_stored_index() const { return used_stored_index_; }

  /// O(1) point lookup: seeks straight to the record's frame and decodes
  /// only it. Returns false when the store holds no such run_index.
  bool lookup(std::size_t run_index, InjectionRecord* record) const;

  /// Every record, in ascending run_index order.
  std::vector<InjectionRecord> read_all() const;

 private:
  std::string path_;
  CampaignManifest manifest_;
  BinaryStoreIndex index_;
  bool used_stored_index_ = false;
  mutable std::ifstream in_;
};

/// Reads a whole binary store as a ShardContent (records in FILE order,
/// mirroring the JSONL read_shard -- a torn trailing frame is ignored).
/// Throws std::runtime_error on corrupt content. Usually reached through
/// the format-dispatching core::read_shard.
ShardContent read_binary_shard(const std::string& path);

/// Number of complete record frames in a binary store file (0 for
/// missing/empty/manifest-only); the binary half of stored_record_count.
std::size_t binary_stored_record_count(const std::string& path);

}  // namespace drivefi::core
