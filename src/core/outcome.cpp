#include "core/outcome.h"

#include <algorithm>
#include <cmath>

namespace drivefi::core {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked:
      return "masked";
    case Outcome::kSdcBenign:
      return "sdc_benign";
    case Outcome::kHang:
      return "hang";
    case Outcome::kHazard:
      return "hazard";
  }
  return "?";
}

bool outcome_from_name(const std::string& name, Outcome* out) {
  for (const Outcome candidate : {Outcome::kMasked, Outcome::kSdcBenign,
                                  Outcome::kHang, Outcome::kHazard}) {
    if (name == outcome_name(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

RunResult classify_run(const std::vector<ads::SceneRecord>& golden,
                       const std::vector<ads::SceneRecord>& injected,
                       bool any_module_hung, const ClassifierConfig& config) {
  RunResult result;

  const std::size_t n = std::min(golden.size(), injected.size());
  int consecutive_violations = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& g = golden[i];
    const auto& f = injected[i];

    result.min_delta_lon = std::min(result.min_delta_lon, f.true_delta_lon);
    result.min_delta_lat = std::min(result.min_delta_lat, f.true_delta_lat);

    const double divergence =
        std::max({std::abs(f.throttle - g.throttle),
                  std::abs(f.brake - g.brake), std::abs(f.steer - g.steer)});
    result.max_actuation_divergence =
        std::max(result.max_actuation_divergence, divergence);

    const bool golden_safe =
        !config.require_golden_safe ||
        (g.true_delta_lon > 0.0 && g.true_delta_lat > 0.0 && !g.collided &&
         !g.off_road);

    if (!golden_safe) {
      consecutive_violations = 0;
      continue;
    }
    if (f.collided && !g.collided) {
      result.collided = true;
      if (!result.delta_violated && result.hazard_scene_index == 0)
        result.hazard_scene_index = i;
    }
    if (f.off_road && !g.off_road) {
      result.off_road = true;
      if (!result.delta_violated && result.hazard_scene_index == 0)
        result.hazard_scene_index = i;
    }
    if (f.true_delta_lon <= 0.0 || f.true_delta_lat <= 0.0) {
      ++consecutive_violations;
      if (consecutive_violations >= config.delta_persistence_scenes &&
          !result.delta_violated) {
        result.delta_violated = true;
        result.hazard_scene_index =
            i + 1 - static_cast<std::size_t>(consecutive_violations);
      }
    } else {
      consecutive_violations = 0;
    }
  }

  if (result.collided || result.off_road || result.delta_violated) {
    result.outcome = Outcome::kHazard;
    result.detail = result.collided     ? "collision"
                    : result.off_road   ? "off_road"
                                        : "delta_violation";
  } else if (any_module_hung) {
    result.outcome = Outcome::kHang;
    result.detail = "module_hang";
  } else if (result.max_actuation_divergence > config.actuation_epsilon) {
    result.outcome = Outcome::kSdcBenign;
    result.detail = "actuation_divergence";
  } else {
    result.outcome = Outcome::kMasked;
    result.detail = "no_observable_effect";
  }
  return result;
}

}  // namespace drivefi::core
