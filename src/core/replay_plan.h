/// \file
/// Planning layer of the shared-prefix replay tree. A campaign's RunSpecs
/// are grouped by scenario (every fault injected into the same scenario
/// shares the fault-free prefix up to its injection point), each fault is
/// mapped to its divergence scene -- the latest golden scene boundary
/// strictly before the injection fires -- and the groups come out as an
/// executable ReplayPlan: one trunk walk per group materializes an
/// in-memory snapshot at every divergence scene, and each per-fault tail
/// forks from its divergence snapshot instead of from the (stride-aligned,
/// possibly much earlier) golden checkpoint.
///
/// Planning is pure bookkeeping over the precomputed golden traces: no
/// simulation happens here, and the plan for a given (model, index list,
/// experiment) is deterministic -- the tree executor's output order and
/// content never depend on it beyond cost.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fault_model.h"
#include "core/trace.h"

namespace drivefi::core {

class Experiment;

/// One campaign run as the tree executes it: the spec, its position in the
/// ordered output sequence, and the trunk scene it forks from
/// (GoldenTrace::kNoScene = no trunk snapshot applies; the node runs the
/// PR 4 fork-from-golden-checkpoint path unchanged).
struct ReplayNode {
  RunSpec spec;
  std::size_t order_pos = 0;
  std::size_t fork_scene = GoldenTrace::kNoScene;
};

/// All replays that share one scenario's golden prefix. `capture_scenes`
/// is the sorted, deduplicated set of divergence scenes the trunk walk
/// must snapshot; nodes are sorted shallowest divergence first (PR 4
/// fallback nodes, which have no divergence scene, come last).
struct ReplayGroup {
  std::size_t scenario_index = 0;
  std::vector<std::size_t> capture_scenes;
  std::vector<ReplayNode> nodes;
};

/// An executable batched-replay campaign: groups in ascending scenario
/// order. Output order is recovered from ReplayNode::order_pos, never from
/// group layout.
struct ReplayPlan {
  std::vector<ReplayGroup> groups;
  std::size_t total_nodes = 0;
  /// Sum of capture_scenes sizes: how many live snapshots the plan wants
  /// when nothing is capped (the default --max-live-snapshots budget).
  std::size_t snapshot_demand = 0;
};

/// Builds the plan for executing `ordered_indices` (ascending run indices;
/// order_pos i corresponds to ordered_indices[i]) of `model`. Groups with
/// fewer than two nodes degrade to the PR 4 path: a trunk that serves a
/// single tail cannot amortize anything, so its node keeps forking from
/// the golden checkpoint directly.
ReplayPlan build_replay_plan(const FaultModel& model,
                             const std::vector<std::size_t>& ordered_indices,
                             const Experiment& experiment);

}  // namespace drivefi::core
