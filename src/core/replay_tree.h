/// \file
/// Execution layer of the shared-prefix replay tree: takes a ReplayPlan
/// (core/replay_plan.h), materializes each group's trunk -- the golden
/// pipeline states at every divergence scene, re-created once per group by
/// restoring golden checkpoints and simulating only the gaps -- and forks
/// the per-fault tails from those in-memory snapshots. Tails within a
/// group parallelize as soon as their trunk is materialized; groups
/// parallelize freely; records are delivered to the consumer in ascending
/// order_pos (campaign output) order through the same OrderedEmitter the
/// flat executor uses.
///
/// Memory bound: live trunk snapshots across all in-flight groups are
/// capped by `max_live_snapshots`. A group that wants more than the
/// remaining budget drops its shallowest divergence snapshots at
/// admission; the affected tails fall back to the PR 4 golden-checkpoint
/// restore (slower, bit-identical). A group's snapshots are freed -- and
/// its budget returned -- when its last tail completes.
///
/// Determinism: scheduling, budget pressure, and snapshot eviction change
/// only where a tail forks and where its reconvergence is detected, never
/// the simulated trajectory; output records are byte-identical to the
/// one-run-at-a-time path at every thread count, group size, and budget
/// (enforced by tests/determinism_test.cpp and tests/replay_tree_test.cpp).
#pragma once

#include <cstddef>
#include <functional>

#include "core/campaign_stats.h"
#include "core/executor.h"
#include "core/replay_plan.h"

namespace drivefi::core {

class Experiment;

struct ReplayTreeOptions {
  ExecutorConfig executor;
  /// Cap on live trunk snapshots across in-flight groups; 0 = uncapped
  /// (every divergence scene the plan demands stays resident).
  std::size_t max_live_snapshots = 0;
};

class ReplayTreeExecutor {
 public:
  ReplayTreeExecutor(const Experiment& experiment, ReplayTreeOptions options)
      : experiment_(experiment), options_(options) {}

  /// Executes the plan. consume(record) runs single-threaded and sees
  /// records in strictly ascending order_pos order. The first exception
  /// from a replay or the consumer cancels outstanding work and is
  /// rethrown here.
  void run(const ReplayPlan& plan,
           const std::function<void(InjectionRecord&&)>& consume) const;

 private:
  const Experiment& experiment_;
  ReplayTreeOptions options_;
};

}  // namespace drivefi::core
