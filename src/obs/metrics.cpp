#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/number_format.h"

namespace drivefi::obs {

namespace {

/// Metric names are dotted ASCII identifiers by convention, but keys flow
/// into JSON, so escape defensively (quote, backslash, control chars). Kept
/// local: obs sits below core, so it cannot use core/jsonl.h.
std::string escape_key(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::uint64_t to_nanos(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negative/NaN clamp to 0
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

double to_seconds(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

/// Relaxed atomic min/max via CAS loops (fetch_min is C++26).
void atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set(double value) {
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

double Histogram::bucket_bound(std::size_t i) {
  if (i >= kBucketCount) return std::numeric_limits<double>::infinity();
  double bound = 1e-6;
  for (std::size_t k = 0; k < i; ++k) bound *= 4.0;
  return bound;
}

void Histogram::observe(double seconds) {
  const std::uint64_t nanos = to_nanos(seconds);
  const double clamped = to_seconds(nanos);
  std::size_t bucket = kBucketCount;  // overflow unless a bound catches it
  double bound = 1e-6;
  for (std::size_t i = 0; i < kBucketCount; ++i, bound *= 4.0) {
    if (clamped <= bound) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  atomic_min(min_nanos_, nanos);
  atomic_max(max_nanos_, nanos);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i <= kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum_seconds = to_seconds(sum_nanos_.load(std::memory_order_relaxed));
  const std::uint64_t min_nanos = min_nanos_.load(std::memory_order_relaxed);
  snap.min_seconds =
      snap.count == 0 || min_nanos == ~std::uint64_t{0} ? 0.0
                                                        : to_seconds(min_nanos);
  snap.max_seconds = to_seconds(max_nanos_.load(std::memory_order_relaxed));
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

namespace {

[[noreturn]] void kind_collision(const std::string& name, const char* kind) {
  throw std::logic_error("metrics: \"" + name + "\" is already registered as" +
                         " a different kind (requested " + kind + ")");
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) || histograms_.count(name))
    kind_collision(name, "counter");
  auto& slot = counters_[name];
  if (!slot) slot = std::unique_ptr<Counter>(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || histograms_.count(name))
    kind_collision(name, "gauge");
  auto& slot = gauges_[name];
  if (!slot) slot = std::unique_ptr<Gauge>(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) || gauges_.count(name))
    kind_collision(name, "histogram");
  auto& slot = histograms_[name];
  if (!slot) slot = std::unique_ptr<Histogram>(new Histogram());
  return *slot;
}

std::vector<std::pair<std::string, std::string>>
MetricsRegistry::snapshot_fields() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // One sorted key space across kinds: merge the three sorted maps. Names
  // are unique across kinds (enforced at registration), and histogram
  // expansions sort under their base name's prefix.
  std::vector<std::pair<std::string, std::string>> fields;
  fields.reserve(counters_.size() + gauges_.size() + histograms_.size() * 18);
  for (const auto& [name, counter] : counters_)
    fields.emplace_back(name, std::to_string(counter->value()));
  for (const auto& [name, gauge] : gauges_)
    fields.emplace_back(name, util::shortest_double(gauge->value()));
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    fields.emplace_back(name + ".count", std::to_string(snap.count));
    fields.emplace_back(name + ".sum_seconds",
                        util::shortest_double(snap.sum_seconds));
    fields.emplace_back(name + ".min_seconds",
                        util::shortest_double(snap.min_seconds));
    fields.emplace_back(name + ".max_seconds",
                        util::shortest_double(snap.max_seconds));
    for (std::size_t i = 0; i <= Histogram::kBucketCount; ++i) {
      const std::string bound =
          i == Histogram::kBucketCount
              ? "inf"
              : util::shortest_double(Histogram::bucket_bound(i));
      fields.emplace_back(name + ".le_" + bound,
                          std::to_string(snap.buckets[i]));
    }
  }
  std::sort(fields.begin(), fields.end());
  return fields;
}

std::string MetricsRegistry::snapshot_jsonl(
    const std::string& record_type) const {
  std::ostringstream out;
  out << "{\"type\":\"" << escape_key(record_type) << "\"";
  for (const auto& [key, value] : snapshot_fields())
    out << ",\"" << escape_key(key) << "\":" << value;
  out << "}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string telemetry_jsonl(double wall_seconds) {
  std::ostringstream out;
  out << "{\"type\":\"telemetry\",\"wall_seconds\":"
      << util::shortest_double(wall_seconds);
  for (const auto& [key, value] : metrics().snapshot_fields())
    out << ",\"" << escape_key(key) << "\":" << value;
  out << "}";
  return out.str();
}

}  // namespace drivefi::obs
