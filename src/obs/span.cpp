#include "obs/span.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

namespace drivefi::obs {

namespace {

std::uint64_t steady_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The one process-wide session. `active` is the span fast-path flag; the
/// mutex serializes event emission and start/stop transitions.
struct TraceSession {
  std::atomic<bool> active{false};
  std::mutex mutex;
  std::ofstream out;
  std::uint64_t start_nanos = 0;
  std::uint64_t events = 0;
};

TraceSession& session() {
  static TraceSession s;
  return s;
}

/// Small per-thread tid in first-span order (chrome://tracing draws one row
/// per tid; real thread ids are unreadable 64-bit values).
int thread_tid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void start_tracing(const std::string& path) {
  TraceSession& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active.load(std::memory_order_relaxed))
    throw std::runtime_error("obs: a trace session is already active");
  s.out.open(path, std::ios::binary | std::ios::trunc);
  if (!s.out)
    throw std::runtime_error("obs: cannot open trace file " + path);
  s.out << "{\"traceEvents\":[";
  s.start_nanos = steady_nanos();
  s.events = 0;
  s.active.store(true, std::memory_order_release);
}

void stop_tracing() {
  TraceSession& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.active.load(std::memory_order_relaxed)) return;
  s.active.store(false, std::memory_order_release);
  s.out << "\n]}\n";
  s.out.flush();
  s.out.close();
}

bool tracing_enabled() {
  return session().active.load(std::memory_order_relaxed);
}

std::uint64_t trace_events_written() {
  TraceSession& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events;
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!tracing_enabled()) return;  // the near-zero disabled path
  name_ = name;
  start_nanos_ = steady_nanos();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t end_nanos = steady_nanos();
  TraceSession& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  // The session may have stopped while this span was open; its file is
  // closed, so the event is dropped rather than torn.
  if (!s.active.load(std::memory_order_relaxed)) return;
  const double ts =
      static_cast<double>(start_nanos_ - s.start_nanos) / 1000.0;
  const double dur = static_cast<double>(end_nanos - start_nanos_) / 1000.0;
  char event[256];
  const int len = std::snprintf(
      event, sizeof(event),
      "%s\n{\"name\":\"%s\",\"cat\":\"drivefi\",\"ph\":\"X\","
      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}",
      s.events == 0 ? "" : ",", name_, ts, dur,
      static_cast<int>(::getpid()), thread_tid());
  // A name long enough to truncate the event would tear the JSON; drop the
  // event instead (span names are short literals, so this never fires).
  if (len <= 0 || static_cast<std::size_t>(len) >= sizeof(event)) return;
  s.out << event;
  ++s.events;
}

}  // namespace drivefi::obs
