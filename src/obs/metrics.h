/// \file
/// Process-wide metrics registry: named atomic counters, gauges, and
/// fixed-bucket latency histograms, snapshot-able to one flat JSON object
/// at any time. This is the quantified-internals layer behind the fleet
/// `status` protocol message, `--metrics-out` periodic snapshots, and the
/// final `telemetry` record -- the measurement discipline the campaigns
/// apply to the AV stack, applied to the campaign machinery itself.
///
/// Inertness contract (enforced by tests/determinism_test.cpp): metrics are
/// pure observation. They never enter the canonical record stream, the
/// campaign manifest, or its compatibility key, and campaign fingerprints
/// are byte-identical whether or not anything reads them. Writers therefore
/// use relaxed atomics -- cheap enough to leave on unconditionally (the <2%
/// overhead gate lives in bench/bench_observability.cpp).
///
/// Snapshot consistency: registration and snapshotting serialize on one
/// registry mutex, so a snapshot always sees a stable metric SET and each
/// individual value is read atomically; writers never block, so values
/// written while the snapshot runs may or may not be included (skew is
/// bounded by the snapshot's own duration). A histogram's exported `count`
/// is derived from its bucket counts read in one pass, so `count` always
/// equals the bucket sum within a single snapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace drivefi::obs {

/// Monotonic event count. Writers are lock-free and wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (fleet completed runs, queue
/// depths). Stored as the double's bit pattern so reads/writes are single
/// atomic ops without locks.
class Gauge {
 public:
  void set(double value);
  double value() const;
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< bit pattern of 0.0
};

/// Fixed-bucket latency histogram over seconds. Bucket upper bounds are
/// exponential: 1e-6 * 4^i for i in [0, kBucketCount) (1 us .. ~67 s), plus
/// an overflow bucket; observation is a linear scan over 13 bounds and a
/// handful of relaxed atomic updates, cheap enough for per-run call sites.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 13;

  /// Upper bound (seconds) of bucket `i`; i == kBucketCount is +inf.
  static double bucket_bound(std::size_t i);

  void observe(double seconds);

  /// A coherent read of the whole histogram (see file comment for the
  /// consistency semantics).
  struct Snapshot {
    std::uint64_t count = 0;          ///< sum of all bucket counts
    double sum_seconds = 0.0;
    double min_seconds = 0.0;         ///< 0 when count == 0
    double max_seconds = 0.0;
    std::array<std::uint64_t, kBucketCount + 1> buckets{};
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount + 1> buckets_{};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> min_nanos_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// The process-wide registry. Metric objects are created on first use by
/// name and live for the process lifetime, so returned references may be
/// cached (including in function-local statics) by hot call sites.
class MetricsRegistry {
 public:
  /// The one shared registry.
  static MetricsRegistry& instance();

  /// Returns the named metric, creating it on first use. A name is unique
  /// ACROSS kinds -- asking for "x" as a counter after it was registered as
  /// a gauge throws std::logic_error, so a snapshot can never hold two
  /// meanings of one key.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Every current value as (key, rendered JSON number) pairs in sorted key
  /// order. Counters and gauges export under their own name; a histogram
  /// `h` expands to `h.count`, `h.sum_seconds`, `h.min_seconds`,
  /// `h.max_seconds`, and one `h.le_<bound>` cumulative-style bucket count
  /// per bound (`h.le_inf` for the overflow bucket).
  std::vector<std::pair<std::string, std::string>> snapshot_fields() const;

  /// One flat JSON object: {"type":"<record_type>", <snapshot fields>}.
  std::string snapshot_jsonl(const std::string& record_type) const;

  /// Zeroes every registered metric (benches and tests; the registry keeps
  /// accumulating across campaigns within a process otherwise).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
MetricsRegistry& metrics();

/// The final per-sitting summary record: the full metrics snapshot as
/// {"type":"telemetry","wall_seconds":<wall>, <snapshot fields>}. Emitted
/// on stderr by drivefi_campaign run / worker and drivefi_campaignd so a
/// sitting's internals survive in logs without touching canonical output.
std::string telemetry_jsonl(double wall_seconds);

}  // namespace drivefi::obs
