/// \file
/// Lightweight scoped timing spans that emit Chrome trace-event JSON
/// (loadable in Perfetto / chrome://tracing), behind one process-wide trace
/// session toggled by `--trace-out`. When no session is active a span costs
/// one relaxed atomic load and a predictable branch -- no clock reads, no
/// allocation -- so instrumentation can stay in release hot paths.
///
/// Same inertness contract as obs/metrics.h: spans observe wall time only
/// and never touch campaign results; tests/determinism_test.cpp holds
/// campaigns byte-identical with tracing on vs off.
///
/// Output format (docs/FORMATS.md "Trace-event output" is normative): a
/// JSON object {"traceEvents":[...]} whose events are complete ("ph":"X")
/// entries -- name, category "drivefi", microsecond ts/dur relative to
/// session start, pid, and a small per-thread tid assigned in first-span
/// order. One event per line so the file stays diffable and line-parseable.
#pragma once

#include <cstdint>
#include <string>

namespace drivefi::obs {

/// Starts the process-wide trace session, truncating `path`. Throws
/// std::runtime_error if a session is already active or the file cannot be
/// opened. Spans entered before start (or after stop) are simply dropped.
void start_tracing(const std::string& path);

/// Ends the session: writes the closing bracket, flushes, and closes the
/// file. No-op when no session is active. Spans still in flight when the
/// session stops are dropped (their scope outlived the session).
void stop_tracing();

/// True while a trace session is active (relaxed read; the span fast path).
bool tracing_enabled();

/// Number of events written by the CURRENT session so far (tests).
std::uint64_t trace_events_written();

/// RAII span: records a complete trace event for its scope when (and only
/// when) a session was active at construction. `name` must outlive the
/// span; pass string literals.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  std::uint64_t start_nanos_ = 0;
};

}  // namespace drivefi::obs

// Drop-in scope instrumentation: DFI_SPAN("replay"); at the top of a block.
#define DFI_SPAN_CONCAT_INNER(a, b) a##b
#define DFI_SPAN_CONCAT(a, b) DFI_SPAN_CONCAT_INNER(a, b)
#define DFI_SPAN(name) \
  ::drivefi::obs::ScopedSpan DFI_SPAN_CONCAT(dfi_span_, __LINE__) { name }
