#include "kinematics/stopping.h"

#include <algorithm>
#include <cmath>

namespace drivefi::kinematics {

namespace {

struct StopState {
  double x, y, theta, v, phi;
};

// Friction cap shared with the bicycle model: while braking at amax the
// combined-slip budget leaves a reduced lateral allowance, approximated
// as a constant fraction of the longitudinal authority.
double phi_limit(double v, double wheelbase, double lat_accel_budget) {
  if (v <= 1.0) return 1.0;
  return std::atan(lat_accel_budget * wheelbase / (v * v));
}

// Reduced dynamics of the emergency-stop maneuver (paper eq. (6)): speed
// ramps down at amax while the steering actuator slews toward a lane-hold
// command (see the header for how this deviates from the paper's frozen
// steering and why).
StopState deriv(const StopState& s, double amax, double wheelbase,
                double release_rate, double lane_hold_gain) {
  double dphi = 0.0;
  if (release_rate > 0.0) {
    const double target = std::clamp(-lane_hold_gain * s.theta, -0.55, 0.55);
    const double err = target - s.phi;
    if (err > 1e-12)
      dphi = release_rate;
    else if (err < -1e-12)
      dphi = -release_rate;
  }
  const double lat_budget = 0.7 * amax;  // combined-slip allowance
  const double phi_eff =
      std::clamp(s.phi, -phi_limit(s.v, wheelbase, lat_budget),
                 phi_limit(s.v, wheelbase, lat_budget));
  return StopState{
      s.v * std::cos(s.theta),
      s.v * std::sin(s.theta),
      s.v * std::tan(phi_eff) / wheelbase,
      -amax,
      dphi,
  };
}

StopState axpy(const StopState& s, const StopState& d, double h) {
  return StopState{s.x + h * d.x, s.y + h * d.y, s.theta + h * d.theta,
                   s.v + h * d.v, s.phi + h * d.phi};
}

}  // namespace

StoppingDistance stopping_distance(double amax, double v0, double theta0,
                                   double phi0, double wheelbase, double dt,
                                   double steering_release_rate) {
  StoppingDistance out;
  // The inputs may be *believed* state reconstructed from corrupted ADS
  // variables (that is the whole point of fault injection), so they must
  // be sanitized before driving the integration loop: a bit-flipped speed
  // of 1e300 m/s would otherwise make t_stop astronomically large. Values
  // are clamped to generous physical envelopes -- the procedure P models a
  // road vehicle, and any clamped input is already far beyond every
  // safety threshold it feeds.
  if (!std::isfinite(v0) || !std::isfinite(theta0) || !std::isfinite(phi0) ||
      !std::isfinite(amax))
    return out;
  constexpr double kMaxSpeed = 150.0;     // m/s, > any road vehicle
  constexpr double kMaxSteer = 1.0;       // rad, past full mechanical lock
  v0 = std::min(v0, kMaxSpeed);
  phi0 = std::clamp(phi0, -kMaxSteer, kMaxSteer);
  if (v0 <= 0.0 || amax <= 0.0) return out;

  // Lane-hold steering gain during the stop (rad of steering per rad of
  // heading error); only active when the steering actuator is modeled
  // (steering_release_rate > 0).
  constexpr double kLaneHoldGain = 1.2;

  StopState s{0.0, 0.0, theta0, v0, phi0};
  double t = 0.0;
  // The stop time is exactly v0/amax since dv/dt = -amax is constant; we
  // still integrate positionally and land the final partial step on it.
  const double t_stop = v0 / amax;
  while (t < t_stop) {
    const double h = std::min(dt, t_stop - t);
    const StopState k1 =
        deriv(s, amax, wheelbase, steering_release_rate, kLaneHoldGain);
    const StopState k2 = deriv(axpy(s, k1, 0.5 * h), amax, wheelbase,
                               steering_release_rate, kLaneHoldGain);
    const StopState k3 = deriv(axpy(s, k2, 0.5 * h), amax, wheelbase,
                               steering_release_rate, kLaneHoldGain);
    const StopState k4 = deriv(axpy(s, k3, h), amax, wheelbase,
                               steering_release_rate, kLaneHoldGain);
    s.x += h / 6.0 * (k1.x + 2.0 * k2.x + 2.0 * k3.x + k4.x);
    s.y += h / 6.0 * (k1.y + 2.0 * k2.y + 2.0 * k3.y + k4.y);
    s.theta += h / 6.0 * (k1.theta + 2.0 * k2.theta + 2.0 * k3.theta + k4.theta);
    s.phi += h / 6.0 * (k1.phi + 2.0 * k2.phi + 2.0 * k3.phi + k4.phi);
    s.v = std::max(0.0, s.v - amax * h);
    t += h;
  }

  // Components are expressed in the reference (lane) frame that theta0 is
  // measured against: a heading error at maneuver start therefore shows up
  // as lateral displacement, which is exactly the lane-violation hazard.
  out.longitudinal = s.x;
  out.lateral = s.y;
  out.stop_time = t_stop;
  return out;
}

StoppingDistance stopping_distance(const VehicleState& state,
                                   const VehicleParams& params, double dt) {
  return stopping_distance(params.amax_comfort, state.v, state.theta,
                           state.phi, params.wheelbase, dt,
                           params.steering_rate);
}

double stopping_distance_straight(double amax, double v0) {
  if (v0 <= 0.0 || amax <= 0.0) return 0.0;
  return v0 * v0 / (2.0 * amax);
}

}  // namespace drivefi::kinematics
