// Emergency-stop maneuver and stopping distance d_stop (paper §III-A,
// eqs. (4)–(7)). The maneuver holds the steering angle (dphi/dt = 0) and
// applies maximum comfortable deceleration (dv/dt = -amax) until the
// vehicle halts; d_stop is the displacement accumulated during the
// maneuver, decomposed into the longitudinal/lateral axes of the vehicle
// frame at the start of the maneuver.
#pragma once

#include "kinematics/bicycle.h"

namespace drivefi::kinematics {

// Components are expressed in the reference frame theta0 is measured
// against (the lane axis): longitudinal is along the lane, lateral across
// it. A heading error theta0 != 0 therefore contributes lateral stopping
// displacement -- the quantity compared against the lane margin.
struct StoppingDistance {
  double longitudinal = 0.0;  // m, along the lane axis (>= 0)
  double lateral = 0.0;       // m, signed; + is left of the lane axis
  double stop_time = 0.0;     // s, time to standstill
};

// The paper's procedure P (eq. (7)): iterative numerical integration of the
// reduced system (6) from the initial kinematic state. Implemented with RK4
// at the given step size.
//
// Deviation from eq. (5), documented in DESIGN.md: the paper freezes the
// steering angle during the stop (dphi/dt = 0). With that choice, ANY
// nonzero steering angle or heading error at highway speed integrates
// into a lateral displacement far beyond the lane margin, so every
// realistically noisy scene reads as laterally unsafe. We instead model
// the stop the way a production AEB executes it -- braking with lane-hold
// steering: the actuator slews (at steering_release_rate, rad/s) toward a
// command that decays the heading error, under a combined-slip friction
// cap. A genuine fault-induced heading excursion still produces a large
// lateral displacement before the hold catches it -- exactly the lateral
// hazard -- while sensor-noise wiggle does not. Pass
// steering_release_rate = 0 for the paper-pure frozen-steering variant.
StoppingDistance stopping_distance(double amax, double v0, double theta0,
                                   double phi0, double wheelbase,
                                   double dt = 5e-3,
                                   double steering_release_rate = 0.8);

// Convenience overload from a vehicle state.
StoppingDistance stopping_distance(const VehicleState& state,
                                   const VehicleParams& params,
                                   double dt = 5e-3);

// Closed form for straight-line motion (phi0 == 0): v0^2 / (2 amax).
// Used by tests/benches to validate the numerical procedure.
double stopping_distance_straight(double amax, double v0);

}  // namespace drivefi::kinematics
