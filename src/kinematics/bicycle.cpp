#include "kinematics/bicycle.h"

#include <algorithm>
#include <cmath>

namespace drivefi::kinematics {

namespace {

constexpr double kDragCoeff = 0.0008;  // 1/m; v^2 drag term

struct Deriv {
  double dx, dy, dtheta, dv;
};

// Longitudinal acceleration as a function of the (stage) speed, so RK4
// stages see the speed-dependent drag and the method keeps its order.
double accel_at(double v, double throttle, double brake,
                const VehicleParams& params) {
  double accel = throttle * params.max_accel - brake * params.max_brake_decel -
                 kDragCoeff * v * v;
  // A stopped vehicle cannot be pushed backwards by brakes/drag.
  if (v <= 0.0 && accel < 0.0) accel = 0.0;
  return accel;
}

// Friction-limited effective steering: tan(phi_eff) <= a_lat_max L / v^2.
// At low speed the mechanical limit binds; at highway speed the tires do.
double effective_steering(double phi, double v, const VehicleParams& params) {
  if (v <= 1.0) return phi;
  const double tan_limit =
      params.max_lateral_accel * params.wheelbase / (v * v);
  const double limit = std::atan(tan_limit);
  return std::clamp(phi, -limit, limit);
}

Deriv derivatives(double theta, double v, double phi, double throttle,
                  double brake, const VehicleParams& params) {
  const double phi_eff = effective_steering(phi, v, params);
  return Deriv{
      v * std::cos(theta),
      v * std::sin(theta),
      v * std::tan(phi_eff) / params.wheelbase,
      accel_at(v, throttle, brake, params),
  };
}

}  // namespace

double longitudinal_accel(const VehicleState& state, const Actuation& act,
                          const VehicleParams& params) {
  const double throttle = std::clamp(act.throttle, 0.0, 1.0);
  const double brake = std::clamp(act.brake, 0.0, 1.0);
  return accel_at(state.v, throttle, brake, params);
}

VehicleState step(const VehicleState& state, const Actuation& act,
                  const VehicleParams& params, double dt) {
  VehicleState s = state;

  // Steering actuator: clamp to the mechanical limit, then slew-limit.
  const double target_phi =
      std::clamp(act.steering, -params.max_steering, params.max_steering);
  const double max_dphi = params.steering_rate * dt;
  s.phi += std::clamp(target_phi - s.phi, -max_dphi, max_dphi);

  const double throttle = std::clamp(act.throttle, 0.0, 1.0);
  const double brake = std::clamp(act.brake, 0.0, 1.0);

  // Classic RK4 over [x, y, theta, v] with phi held over the step; the
  // acceleration (incl. speed-dependent drag) is re-evaluated per stage.
  const Deriv k1 = derivatives(s.theta, s.v, s.phi, throttle, brake, params);
  const Deriv k2 = derivatives(s.theta + 0.5 * dt * k1.dtheta,
                               std::max(0.0, s.v + 0.5 * dt * k1.dv), s.phi,
                               throttle, brake, params);
  const Deriv k3 = derivatives(s.theta + 0.5 * dt * k2.dtheta,
                               std::max(0.0, s.v + 0.5 * dt * k2.dv), s.phi,
                               throttle, brake, params);
  const Deriv k4 = derivatives(s.theta + dt * k3.dtheta,
                               std::max(0.0, s.v + dt * k3.dv), s.phi,
                               throttle, brake, params);

  s.x += dt / 6.0 * (k1.dx + 2.0 * k2.dx + 2.0 * k3.dx + k4.dx);
  s.y += dt / 6.0 * (k1.dy + 2.0 * k2.dy + 2.0 * k3.dy + k4.dy);
  s.theta += dt / 6.0 * (k1.dtheta + 2.0 * k2.dtheta + 2.0 * k3.dtheta + k4.dtheta);
  s.v += dt / 6.0 * (k1.dv + 2.0 * k2.dv + 2.0 * k3.dv + k4.dv);
  s.v = std::clamp(s.v, 0.0, params.max_speed);
  s.a = accel_at(s.v, throttle, brake, params);
  return s;
}

double distance(const VehicleState& a, const VehicleState& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace drivefi::kinematics
