// Safety envelope d_safe and safety potential delta (paper §II-B,
// Definitions 1–3). d_safe is the distance the EV can travel without
// colliding with any static or dynamic object; lane boundaries of the Ego
// lane count as static objects so lane violations register as hazards.
// delta = d_safe - d_stop, evaluated independently in the longitudinal and
// lateral directions; the AV is safe iff both are > 0.
#pragma once

#include <optional>
#include <vector>

#include "kinematics/bicycle.h"
#include "kinematics/stopping.h"

namespace drivefi::kinematics {

// Minimal kinematic view of a non-ego object; sim/ fills these from the
// ground-truth world, ads/ fills them from the tracked world model, so the
// same safety code evaluates both true and believed safety.
struct ObstacleView {
  double x = 0.0;
  double y = 0.0;
  double theta = 0.0;
  double v = 0.0;
  double length = 4.8;
  double width = 1.9;
};

struct SafetyEnvelope {
  double d_safe_lon = 0.0;  // m, free distance straight ahead
  double d_safe_lat = 0.0;  // m, min lateral margin (obstacles + ego lane)
  // Which obstacle bounds the longitudinal envelope (index into the input
  // list), if any; used by reports and the Bayesian selector's diagnostics.
  std::optional<std::size_t> limiting_obstacle;
};

struct SafetyPotential {
  double longitudinal = 0.0;  // m, delta_lon
  double lateral = 0.0;       // m, delta_lat
  bool safe() const { return longitudinal > 0.0 && lateral > 0.0; }
};

struct SafetyConfig {
  double lane_width = 3.7;        // m, US highway lane
  double horizon = 250.0;         // m, sensing horizon; caps d_safe
  double lateral_corridor = 0.4;  // m, slack added around body widths when
                                  // deciding if an obstacle is "in path"
  double standstill_margin = 2.0; // m, bumper gap treated as collision-free
  // Deceleration assumed for dynamic obstacles when projecting their
  // trajectories (paper §II-B: production ADSs estimate object
  // trajectories when computing d_safe). A moving lead extends the
  // envelope by its own stopping distance, RSS-style.
  double obstacle_amax = 6.0;
};

// Computes d_safe from the EV state and obstacle list. ego_lane_center_y
// is the lateral center of the Ego lane in world frame (the simulator uses
// straight lanes along +x; curved roads are handled by mapping into lane
// frame before calling).
SafetyEnvelope safety_envelope(const VehicleState& ev,
                               const VehicleParams& ev_params,
                               const std::vector<ObstacleView>& obstacles,
                               double ego_lane_center_y,
                               const SafetyConfig& config = {});

// delta = d_safe - d_stop (Definition 3).
SafetyPotential safety_potential(const SafetyEnvelope& envelope,
                                 const StoppingDistance& dstop);

// Full pipeline: envelope + stopping distance + potential.
SafetyPotential compute_safety_potential(
    const VehicleState& ev, const VehicleParams& ev_params,
    const std::vector<ObstacleView>& obstacles, double ego_lane_center_y,
    const SafetyConfig& config = {});

}  // namespace drivefi::kinematics
