#include "kinematics/safety.h"

#include <algorithm>
#include <cmath>

namespace drivefi::kinematics {

SafetyEnvelope safety_envelope(const VehicleState& ev,
                               const VehicleParams& ev_params,
                               const std::vector<ObstacleView>& obstacles,
                               double ego_lane_center_y,
                               const SafetyConfig& config) {
  SafetyEnvelope env;
  env.d_safe_lon = config.horizon;

  const double cos_h = std::cos(ev.theta);
  const double sin_h = std::sin(ev.theta);

  // Lateral margin to the Ego-lane boundaries (lane edges are static
  // objects per the paper, so crossing one exhausts the lateral envelope).
  const double half_lane = config.lane_width / 2.0;
  const double half_width = ev_params.width / 2.0;
  const double off_center = ev.y - ego_lane_center_y;
  double lat_margin =
      std::max(0.0, half_lane - std::abs(off_center) - half_width);

  for (std::size_t i = 0; i < obstacles.size(); ++i) {
    const ObstacleView& obs = obstacles[i];
    // Obstacle position in the EV body frame.
    const double dx = obs.x - ev.x;
    const double dy = obs.y - ev.y;
    const double lon = dx * cos_h + dy * sin_h;
    const double lat = -dx * sin_h + dy * cos_h;

    const double half_widths =
        half_width + obs.width / 2.0 + config.lateral_corridor;
    const double half_lengths = (ev_params.length + obs.length) / 2.0;

    if (lon > 0.0 && std::abs(lat) < half_widths) {
      // In the forward corridor: limits the longitudinal envelope. The
      // envelope credits the obstacle's own (worst-case braking)
      // trajectory: a lead moving away adds its stopping distance.
      const double gap =
          std::max(0.0, lon - half_lengths - config.standstill_margin);
      const double v_along =
          obs.v * std::cos(obs.theta - ev.theta);  // along ego heading
      const double trajectory_credit =
          v_along > 0.0
              ? v_along * v_along / (2.0 * config.obstacle_amax)
              : 0.0;
      const double free_distance = gap + trajectory_credit;
      if (free_distance < env.d_safe_lon) {
        env.d_safe_lon = free_distance;
        env.limiting_obstacle = i;
      }
    } else if (std::abs(lon) < half_lengths) {
      // Abeam of the EV: limits the lateral envelope.
      const double side_gap =
          std::max(0.0, std::abs(lat) - half_width - obs.width / 2.0);
      lat_margin = std::min(lat_margin, side_gap);
    }
  }

  env.d_safe_lat = lat_margin;
  return env;
}

SafetyPotential safety_potential(const SafetyEnvelope& envelope,
                                 const StoppingDistance& dstop) {
  SafetyPotential sp;
  sp.longitudinal = envelope.d_safe_lon - dstop.longitudinal;
  sp.lateral = envelope.d_safe_lat - std::abs(dstop.lateral);
  return sp;
}

SafetyPotential compute_safety_potential(
    const VehicleState& ev, const VehicleParams& ev_params,
    const std::vector<ObstacleView>& obstacles, double ego_lane_center_y,
    const SafetyConfig& config) {
  const SafetyEnvelope env = safety_envelope(ev, ev_params, obstacles,
                                             ego_lane_center_y, config);
  const StoppingDistance dstop = stopping_distance(ev, ev_params);
  return safety_potential(env, dstop);
}

}  // namespace drivefi::kinematics
