// Kinematic bicycle model of the ego vehicle (paper §III-A, eq. (3)):
//   dx/dt = v cos(theta), dy/dt = v sin(theta), dtheta/dt = v tan(phi) / L
// with speed v driven by throttle/brake through a longitudinal
// acceleration model.
#pragma once

#include <cstddef>

namespace drivefi::kinematics {

// Planar pose + motion state of a vehicle.
struct VehicleState {
  double x = 0.0;      // m, world frame
  double y = 0.0;      // m, world frame
  double theta = 0.0;  // rad, heading
  double v = 0.0;      // m/s, forward speed (>= 0)
  double phi = 0.0;    // rad, steering angle
  double a = 0.0;      // m/s^2, current longitudinal acceleration

  bool operator==(const VehicleState&) const = default;
};

// Actuation command applied to the vehicle (paper's A_t = {throttle zeta,
// brake b, steering angle phi}).
struct Actuation {
  double throttle = 0.0;  // [0, 1]
  double brake = 0.0;     // [0, 1]
  double steering = 0.0;  // rad, commanded steering angle
};

// Physical parameters; defaults approximate a mid-size sedan and match the
// constants used throughout the paper's examples (amax comfortable ~6 m/s^2,
// highway speed 33.5 m/s).
struct VehicleParams {
  double wheelbase = 2.8;          // L, m
  double max_accel = 4.5;          // m/s^2 at full throttle
  double max_brake_decel = 8.0;    // m/s^2 at full brake
  double amax_comfort = 6.0;       // m/s^2, emergency-stop deceleration
  double max_steering = 0.55;      // rad, mechanical steering limit
  double max_speed = 45.0;         // m/s
  double steering_rate = 0.8;      // rad/s, actuator slew limit
  // Tire friction limit on lateral acceleration: the yaw dynamics use an
  // effective steering angle capped so that v^2 tan(phi)/L never exceeds
  // this. Without it the kinematic model would corner at 7 g under a
  // full-lock command at highway speed, which no road tire delivers, and
  // brief steering faults would be apocalyptic instead of hazardous.
  double max_lateral_accel = 6.0;  // m/s^2 (~0.6 g)
  double length = 4.8;             // m, body length
  double width = 1.9;              // m, body width

  bool operator==(const VehicleParams&) const = default;
};

// Longitudinal acceleration produced by an actuation command, including
// quadratic aero drag so cruise throttle is nonzero (makes throttle
// corruptions observable, as in the paper's Example 1).
double longitudinal_accel(const VehicleState& state, const Actuation& act,
                          const VehicleParams& params);

// Advance the bicycle model by dt seconds under a fixed actuation using
// RK4 on the state [x, y, theta, v]. Steering obeys the slew limit.
VehicleState step(const VehicleState& state, const Actuation& act,
                  const VehicleParams& params, double dt);

// Euclidean distance between two states' positions.
double distance(const VehicleState& a, const VehicleState& b);

}  // namespace drivefi::kinematics
