/// \file
/// The .scn scenario DSL: a small line-oriented text format that round-trips
/// sim::Scenario (road, ego start, TV scripts, IDM params, duration), so
/// driving situations are data instead of C++ functions. Numbers serialize
/// via std::to_chars in their shortest exact form ("3.7", never
/// "3.7000000000000002" -- keep it that way, the files are meant to be
/// read and diffed), so parse(serialize(s)) == s field-for-field and an
/// exported suite replays bit-identical simulation traces.
///
///   # comment                      (blank lines and # comments are skipped)
///   scenario lead_brake
///     description "Lead vehicle brakes hard mid-scenario."
///     duration 40
///     road lanes=3 lane_width=3.7
///     ego lane=1 speed=30
///     ego_params wheelbase=2.8 max_accel=4.5 max_brake_decel=8  # optional
///     vehicle lead gap=55 lane=1 speed=30 length=4.8 width=1.9
///       phase t=0 speed=30 accel=2 lane_change_duration=3
///       phase t=15 speed=12 accel=5 lane=2 lane_change_duration=3.5
///       idm desired_speed=28 time_headway=1.5 min_gap=2 comfort_decel=2.5
///   end
///
/// `lane=` on a phase is the optional lane-change target; an `idm` line makes
/// the vehicle's longitudinal motion reactive (sim::TvConfig::idm). Keys may
/// appear in any order; unknown keys and malformed lines are hard errors with
/// the offending line number.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace drivefi::scenario {

/// Parse failure: `line` is 1-based within the parsed text.
class ScnError : public std::runtime_error {
 public:
  ScnError(std::size_t line, const std::string& message)
      : std::runtime_error("scn:" + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One scenario / a whole suite to DSL text.
std::string serialize(const sim::Scenario& scenario);
std::string serialize_suite(const std::vector<sim::Scenario>& suite);

/// DSL text to scenarios. Throws ScnError on malformed input.
std::vector<sim::Scenario> parse_suite(const std::string& text);
/// Convenience for text expected to hold exactly one scenario.
sim::Scenario parse_scenario(const std::string& text);

/// File I/O. load_suite throws ScnError (parse) or std::runtime_error (I/O);
/// save_suite throws std::runtime_error on I/O failure.
std::vector<sim::Scenario> load_suite(const std::string& path);
void save_suite(const std::string& path, const std::vector<sim::Scenario>& suite);

}  // namespace drivefi::scenario
