#include "scenario/dsl.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/number_format.h"

namespace drivefi::scenario {

namespace {

// ---------- serialization ----------

// Shortest exact, locale-independent form (util/number_format.h): what
// makes parse(serialize(s)) bit-identical regardless of host locale.
std::string fmt(double v) { return util::shortest_double(v); }

// The parser is line-oriented, so newlines (and CRs, which getline would
// otherwise leave embedded) must travel as \n / \r escapes.
std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
  }
  out += '"';
  return out;
}

// Names are usually bare identifiers; quote only when the token would not
// survive whitespace-splitting (or would read as a comment / quoted string).
std::string name_token(const std::string& s) {
  bool bare = !s.empty();
  for (char c : s)
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '#')
      bare = false;
  return bare ? s : quote(s);
}

void serialize_into(const sim::Scenario& s, std::ostream& out) {
  out << "scenario " << name_token(s.name) << "\n";
  out << "  description " << quote(s.description) << "\n";
  out << "  duration " << fmt(s.duration) << "\n";
  out << "  road lanes=" << s.world.road.lanes
      << " lane_width=" << fmt(s.world.road.lane_width) << "\n";
  out << "  ego lane=" << s.world.ego_lane << " speed=" << fmt(s.world.ego_speed)
      << "\n";
  // Emitted only when customized, so typical files stay compact; the
  // parser applies defaults for any key left out.
  if (!(s.world.ego_params == kinematics::VehicleParams{})) {
    const auto& p = s.world.ego_params;
    out << "  ego_params wheelbase=" << fmt(p.wheelbase)
        << " max_accel=" << fmt(p.max_accel)
        << " max_brake_decel=" << fmt(p.max_brake_decel)
        << " amax_comfort=" << fmt(p.amax_comfort)
        << " max_steering=" << fmt(p.max_steering)
        << " max_speed=" << fmt(p.max_speed)
        << " steering_rate=" << fmt(p.steering_rate)
        << " max_lateral_accel=" << fmt(p.max_lateral_accel)
        << " length=" << fmt(p.length) << " width=" << fmt(p.width) << "\n";
  }
  for (const auto& tv : s.world.vehicles) {
    out << "  vehicle " << name_token(tv.name) << " gap=" << fmt(tv.initial_gap)
        << " lane=" << tv.initial_lane << " speed=" << fmt(tv.initial_speed)
        << " length=" << fmt(tv.length) << " width=" << fmt(tv.width) << "\n";
    for (const auto& ph : tv.phases) {
      out << "    phase t=" << fmt(ph.start_time)
          << " speed=" << fmt(ph.target_speed) << " accel=" << fmt(ph.accel);
      if (ph.target_lane) out << " lane=" << *ph.target_lane;
      out << " lane_change_duration=" << fmt(ph.lane_change_duration) << "\n";
    }
    if (tv.idm) {
      out << "    idm desired_speed=" << fmt(tv.idm->desired_speed)
          << " time_headway=" << fmt(tv.idm->time_headway)
          << " min_gap=" << fmt(tv.idm->min_gap)
          << " max_accel=" << fmt(tv.idm->max_accel)
          << " comfort_decel=" << fmt(tv.idm->comfort_decel)
          << " exponent=" << fmt(tv.idm->exponent)
          << " hard_decel_cap=" << fmt(tv.idm->hard_decel_cap) << "\n";
    }
  }
  out << "end\n";
}

// ---------- parsing ----------

struct Token {
  std::string text;
  bool quoted = false;
};

// Splits one line into tokens: whitespace-separated words plus
// double-quoted strings (with \" and \\ escapes). '#' starts a comment
// outside quotes.
std::vector<Token> tokenize(const std::string& line, std::size_t line_no) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == '"') {
      Token token;
      token.quoted = true;
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\\') {
          const char escaped = i + 1 < line.size() ? line[i + 1] : '\0';
          if (escaped == 'n')
            token.text += '\n';
          else if (escaped == 'r')
            token.text += '\r';
          else if (escaped == '"' || escaped == '\\')
            token.text += escaped;
          else
            throw ScnError(line_no, std::string("unknown escape '\\") +
                                        escaped + "' in string");
          i += 2;
        } else if (line[i] == '"') {
          ++i;
          closed = true;
          break;
        } else {
          token.text += line[i++];
        }
      }
      if (!closed) throw ScnError(line_no, "unterminated string");
      tokens.push_back(std::move(token));
      continue;
    }
    Token token;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '#' && line[i] != '"')
      token.text += line[i++];
    tokens.push_back(std::move(token));
  }
  return tokens;
}

double parse_double(const std::string& text, std::size_t line_no,
                    const std::string& key) {
  double v = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, v);
  if (ec != std::errc() || ptr != end)
    throw ScnError(line_no, "expected a number for '" + key + "', got '" +
                                text + "'");
  return v;
}

int parse_int(const std::string& text, std::size_t line_no,
              const std::string& key) {
  int v = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, v);
  if (ec == std::errc::result_out_of_range)
    throw ScnError(line_no, "integer out of range for '" + key + "': '" +
                                text + "'");
  if (ec != std::errc() || ptr != end)
    throw ScnError(line_no, "expected an integer for '" + key + "', got '" +
                                text + "'");
  return v;
}

// One key=value pair from a token.
std::pair<std::string, std::string> split_kv(const Token& token,
                                             std::size_t line_no) {
  const std::size_t eq = token.text.find('=');
  if (token.quoted || eq == std::string::npos || eq == 0)
    throw ScnError(line_no, "expected key=value, got '" + token.text + "'");
  return {token.text.substr(0, eq), token.text.substr(eq + 1)};
}

}  // namespace

std::string serialize(const sim::Scenario& scenario) {
  std::ostringstream out;
  serialize_into(scenario, out);
  return out.str();
}

std::string serialize_suite(const std::vector<sim::Scenario>& suite) {
  std::ostringstream out;
  out << "# drivefi scenario suite (" << suite.size() << " scenarios)\n";
  for (const auto& s : suite) {
    out << "\n";
    serialize_into(s, out);
  }
  return out.str();
}

std::vector<sim::Scenario> parse_suite(const std::string& text) {
  std::vector<sim::Scenario> suite;
  sim::Scenario current;
  bool in_scenario = false;
  std::size_t open_line = 0;
  // Index into current.world.vehicles of the vehicle that phase/idm lines
  // attach to; -1 when none has been declared yet.
  long vehicle_index = -1;

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<Token> tokens = tokenize(line, line_no);
    if (tokens.empty()) continue;
    // A quoted token is always data, never structure: "end" (quoted) must
    // not silently close a scenario block.
    if (tokens[0].quoted)
      throw ScnError(line_no, "expected a keyword, got the quoted string '" +
                                  tokens[0].text + "'");
    const std::string& keyword = tokens[0].text;

    if (keyword == "scenario") {
      if (in_scenario)
        throw ScnError(line_no, "nested 'scenario' (missing 'end'?)");
      if (tokens.size() != 2)
        throw ScnError(line_no, "usage: scenario <name>");
      current = sim::Scenario{};
      current.name = tokens[1].text;
      in_scenario = true;
      open_line = line_no;
      vehicle_index = -1;
      continue;
    }
    if (!in_scenario)
      throw ScnError(line_no, "'" + keyword + "' outside a scenario block");

    if (keyword == "end") {
      if (tokens.size() != 1) throw ScnError(line_no, "usage: end");
      suite.push_back(std::move(current));
      in_scenario = false;
    } else if (keyword == "description") {
      if (tokens.size() != 2)
        throw ScnError(line_no, "usage: description \"<text>\"");
      current.description = tokens[1].text;
    } else if (keyword == "duration") {
      if (tokens.size() != 2) throw ScnError(line_no, "usage: duration <s>");
      current.duration = parse_double(tokens[1].text, line_no, "duration");
    } else if (keyword == "road") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "lanes")
          current.world.road.lanes = parse_int(value, line_no, key);
        else if (key == "lane_width")
          current.world.road.lane_width = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown road key '" + key + "'");
      }
    } else if (keyword == "ego") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "lane")
          current.world.ego_lane = parse_int(value, line_no, key);
        else if (key == "speed")
          current.world.ego_speed = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown ego key '" + key + "'");
      }
    } else if (keyword == "ego_params") {
      kinematics::VehicleParams& p = current.world.ego_params;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "wheelbase")
          p.wheelbase = parse_double(value, line_no, key);
        else if (key == "max_accel")
          p.max_accel = parse_double(value, line_no, key);
        else if (key == "max_brake_decel")
          p.max_brake_decel = parse_double(value, line_no, key);
        else if (key == "amax_comfort")
          p.amax_comfort = parse_double(value, line_no, key);
        else if (key == "max_steering")
          p.max_steering = parse_double(value, line_no, key);
        else if (key == "max_speed")
          p.max_speed = parse_double(value, line_no, key);
        else if (key == "steering_rate")
          p.steering_rate = parse_double(value, line_no, key);
        else if (key == "max_lateral_accel")
          p.max_lateral_accel = parse_double(value, line_no, key);
        else if (key == "length")
          p.length = parse_double(value, line_no, key);
        else if (key == "width")
          p.width = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown ego_params key '" + key + "'");
      }
    } else if (keyword == "vehicle") {
      if (tokens.size() < 2)
        throw ScnError(line_no, "usage: vehicle <name> key=value...");
      sim::TvConfig tv;
      tv.name = tokens[1].text;
      tv.phases.clear();
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "gap")
          tv.initial_gap = parse_double(value, line_no, key);
        else if (key == "lane")
          tv.initial_lane = parse_int(value, line_no, key);
        else if (key == "speed")
          tv.initial_speed = parse_double(value, line_no, key);
        else if (key == "length")
          tv.length = parse_double(value, line_no, key);
        else if (key == "width")
          tv.width = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown vehicle key '" + key + "'");
      }
      current.world.vehicles.push_back(std::move(tv));
      vehicle_index = static_cast<long>(current.world.vehicles.size()) - 1;
    } else if (keyword == "phase") {
      if (vehicle_index < 0)
        throw ScnError(line_no, "'phase' before any 'vehicle'");
      sim::TvPhase ph;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "t")
          ph.start_time = parse_double(value, line_no, key);
        else if (key == "speed")
          ph.target_speed = parse_double(value, line_no, key);
        else if (key == "accel")
          ph.accel = parse_double(value, line_no, key);
        else if (key == "lane")
          ph.target_lane = parse_int(value, line_no, key);
        else if (key == "lane_change_duration")
          ph.lane_change_duration = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown phase key '" + key + "'");
      }
      current.world.vehicles[static_cast<std::size_t>(vehicle_index)]
          .phases.push_back(ph);
    } else if (keyword == "idm") {
      if (vehicle_index < 0)
        throw ScnError(line_no, "'idm' before any 'vehicle'");
      sim::IdmConfig idm;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i], line_no);
        if (key == "desired_speed")
          idm.desired_speed = parse_double(value, line_no, key);
        else if (key == "time_headway")
          idm.time_headway = parse_double(value, line_no, key);
        else if (key == "min_gap")
          idm.min_gap = parse_double(value, line_no, key);
        else if (key == "max_accel")
          idm.max_accel = parse_double(value, line_no, key);
        else if (key == "comfort_decel")
          idm.comfort_decel = parse_double(value, line_no, key);
        else if (key == "exponent")
          idm.exponent = parse_double(value, line_no, key);
        else if (key == "hard_decel_cap")
          idm.hard_decel_cap = parse_double(value, line_no, key);
        else
          throw ScnError(line_no, "unknown idm key '" + key + "'");
      }
      current.world.vehicles[static_cast<std::size_t>(vehicle_index)].idm = idm;
    } else {
      throw ScnError(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_scenario)
    throw ScnError(open_line, "scenario '" + current.name +
                                  "' never closed with 'end'");
  return suite;
}

sim::Scenario parse_scenario(const std::string& text) {
  std::vector<sim::Scenario> suite = parse_suite(text);
  if (suite.size() != 1)
    throw ScnError(1, "expected exactly one scenario, got " +
                          std::to_string(suite.size()));
  return std::move(suite.front());
}

std::vector<sim::Scenario> load_suite(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_suite(text.str());
}

void save_suite(const std::string& path,
                const std::vector<sim::Scenario>& suite) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << serialize_suite(suite);
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

}  // namespace drivefi::scenario
