#include "scenario/generators.h"

#include <algorithm>
#include <cmath>

namespace drivefi::scenario {

namespace {

// Rounds a drawn parameter to a fixed grid so serialized scenarios stay
// human-readable (and diffable) without sacrificing diversity: 0.1 m / 0.1
// m/s resolution is far finer than the coverage bands.
double snap(double v) { return std::round(v * 10.0) / 10.0; }

sim::TvConfig scripted_tv(const std::string& name, double gap, int lane,
                          double speed) {
  sim::TvConfig tv;
  tv.name = name;
  tv.initial_gap = snap(gap);
  tv.initial_lane = lane;
  tv.initial_speed = snap(speed);
  tv.phases.push_back({0.0, tv.initial_speed, 2.0, std::nullopt, 3.0});
  return tv;
}

// Adjacent lane on whichever side exists; prefers the left.
int adjacent_lane(int lane, int lanes, util::Rng& rng) {
  const bool left_ok = lane + 1 < lanes;
  const bool right_ok = lane - 1 >= 0;
  if (left_ok && right_ok) return rng.bernoulli(0.5) ? lane + 1 : lane - 1;
  return left_ok ? lane + 1 : lane - 1;
}

sim::Scenario blank(const std::string& name, const std::string& description,
                    util::Rng& rng, int lanes, double ego_speed) {
  sim::Scenario s;
  s.name = name;
  s.description = description;
  s.duration = snap(rng.uniform(25.0, 45.0));
  s.world.road.lanes = lanes;
  s.world.ego_lane = rng.uniform_int(0, lanes - 1);
  s.world.ego_speed = snap(ego_speed);
  return s;
}

}  // namespace

sim::Scenario gen_lead_brake(util::Rng& rng) {
  const int lanes = rng.uniform_int(2, 3);
  const double ego_speed = rng.uniform(8.0, 38.0);
  sim::Scenario s = blank("lead_brake",
                          "Procedural: lead vehicle brakes mid-scenario.",
                          rng, lanes, ego_speed);
  const double gap = rng.uniform(8.0, 140.0);
  const double lead_speed =
      std::max(0.0, ego_speed + rng.uniform(-14.0, 3.0));
  sim::TvConfig lead = scripted_tv("lead", gap, s.world.ego_lane, lead_speed);
  const double brake_time = snap(rng.uniform(4.0, 15.0));
  const double brake_to = snap(rng.uniform(0.0, 0.6) * lead_speed);
  lead.phases.push_back(
      {brake_time, brake_to, snap(rng.uniform(3.0, 8.0)), std::nullopt, 3.0});
  if (rng.bernoulli(0.5)) {
    // Recovery ramp back toward cruise.
    lead.phases.push_back({snap(brake_time + rng.uniform(6.0, 12.0)),
                           snap(lead_speed * rng.uniform(0.7, 1.0)),
                           snap(rng.uniform(1.5, 3.0)), std::nullopt, 3.0});
  }
  s.world.vehicles.push_back(std::move(lead));
  return s;
}

sim::Scenario gen_cut_in(util::Rng& rng) {
  const int lanes = rng.uniform_int(2, 4);
  const double ego_speed = rng.uniform(12.0, 38.0);
  sim::Scenario s = blank("cut_in",
                          "Procedural: adjacent vehicle cuts into the ego "
                          "lane at a small gap.",
                          rng, lanes, ego_speed);
  const int from_lane = adjacent_lane(s.world.ego_lane, lanes, rng);
  sim::TvConfig cutter =
      scripted_tv("cutter", rng.uniform(4.0, 30.0), from_lane,
                  std::max(0.0, ego_speed + rng.uniform(-5.0, 3.0)));
  const double cut_time = snap(rng.uniform(3.0, 12.0));
  const double after_speed =
      std::max(0.0, snap(ego_speed + rng.uniform(-10.0, 0.0)));
  cutter.phases.push_back({cut_time, after_speed, snap(rng.uniform(1.5, 3.5)),
                           s.world.ego_lane, snap(rng.uniform(2.0, 4.5))});
  s.world.vehicles.push_back(std::move(cutter));
  if (rng.bernoulli(0.6)) {
    // Traffic ahead in lane blocks the escape-forward option.
    s.world.vehicles.push_back(
        scripted_tv("far_lead", rng.uniform(80.0, 160.0), s.world.ego_lane,
                    std::max(0.0, ego_speed + rng.uniform(-6.0, 1.0))));
  }
  return s;
}

sim::Scenario gen_merge_gap(util::Rng& rng) {
  const int lanes = rng.uniform_int(2, 4);
  const double ego_speed = rng.uniform(10.0, 36.0);
  sim::Scenario s = blank("merge_gap",
                          "Procedural: vehicle merges into the gap between "
                          "the ego and its lead.",
                          rng, lanes, ego_speed);
  const double lead_gap = rng.uniform(25.0, 110.0);
  s.world.vehicles.push_back(
      scripted_tv("lead", lead_gap, s.world.ego_lane,
                  std::max(0.0, ego_speed + rng.uniform(-8.0, 2.0))));
  const int from_lane = adjacent_lane(s.world.ego_lane, lanes, rng);
  sim::TvConfig merger =
      scripted_tv("merger", rng.uniform(6.0, std::max(8.0, lead_gap - 8.0)),
                  from_lane,
                  std::max(0.0, ego_speed + rng.uniform(-4.0, 4.0)));
  merger.phases.push_back({snap(rng.uniform(5.0, 14.0)),
                           merger.initial_speed, 2.0, s.world.ego_lane,
                           snap(rng.uniform(2.5, 4.0))});
  s.world.vehicles.push_back(std::move(merger));
  return s;
}

sim::Scenario gen_stop_and_go(util::Rng& rng) {
  const int lanes = rng.uniform_int(2, 3);
  const double ego_speed = rng.uniform(8.0, 30.0);
  sim::Scenario s = blank("stop_and_go",
                          "Procedural: lead oscillates between crawling and "
                          "cruising (congestion wave).",
                          rng, lanes, ego_speed);
  const double cruise = std::max(2.0, ego_speed + rng.uniform(-3.0, 2.0));
  sim::TvConfig lead =
      scripted_tv("lead", rng.uniform(12.0, 60.0), s.world.ego_lane, cruise);
  double t = 0.0;
  const int cycles = rng.uniform_int(2, 4);
  for (int i = 0; i < cycles; ++i) {
    t += rng.uniform(5.0, 10.0);
    lead.phases.push_back({snap(t), snap(cruise * rng.uniform(0.0, 0.4)),
                           snap(rng.uniform(2.5, 5.0)), std::nullopt, 3.0});
    t += rng.uniform(5.0, 9.0);
    lead.phases.push_back({snap(t), snap(cruise * rng.uniform(0.8, 1.1)),
                           snap(rng.uniform(1.5, 3.0)), std::nullopt, 3.0});
  }
  s.world.vehicles.push_back(std::move(lead));
  return s;
}

sim::Scenario gen_multi_lane_weave(util::Rng& rng) {
  const int lanes = rng.uniform_int(3, 4);
  const double ego_speed = rng.uniform(15.0, 35.0);
  sim::Scenario s = blank("multi_lane_weave",
                          "Procedural: dense multi-lane traffic weaving "
                          "across lanes; some vehicles follow reactively "
                          "(IDM).",
                          rng, lanes, ego_speed);
  const int tv_count = rng.uniform_int(3, 6);
  for (int i = 0; i < tv_count; ++i) {
    const int lane = rng.uniform_int(0, lanes - 1);
    double gap = rng.uniform(-40.0, 160.0);
    // Keep spawns in the ego lane clear of the ego's own footprint.
    if (lane == s.world.ego_lane && std::abs(gap) < 14.0)
      gap = gap < 0.0 ? gap - 14.0 : gap + 14.0;
    std::string tv_name = "w";
    tv_name += std::to_string(i);
    sim::TvConfig tv =
        scripted_tv(tv_name, gap, lane,
                    std::max(0.0, ego_speed + rng.uniform(-8.0, 5.0)));
    if (rng.bernoulli(0.4)) {
      // Reactive car-following; phases below still drive lane changes.
      tv.phases.clear();
      sim::IdmConfig idm;
      idm.desired_speed = snap(ego_speed * rng.uniform(0.8, 1.2));
      idm.time_headway = snap(rng.uniform(1.0, 2.2));
      idm.max_accel = snap(rng.uniform(1.2, 2.5));
      idm.comfort_decel = snap(rng.uniform(1.8, 3.5));
      tv.idm = idm;
    }
    const int weaves = rng.uniform_int(1, 2);
    double t = 0.0;
    int current_lane = lane;
    for (int w = 0; w < weaves; ++w) {
      t += rng.uniform(4.0, 14.0);
      const int to = std::clamp(
          current_lane + (rng.bernoulli(0.5) ? 1 : -1), 0, lanes - 1);
      if (to == current_lane) continue;
      tv.phases.push_back({snap(t), tv.initial_speed,
                           snap(rng.uniform(1.5, 2.5)), to,
                           snap(rng.uniform(2.5, 4.5))});
      current_lane = to;
    }
    s.world.vehicles.push_back(std::move(tv));
  }
  return s;
}

const std::vector<Generator>& generators() {
  static const std::vector<Generator> kGenerators = {
      {"lead_brake", gen_lead_brake},
      {"cut_in", gen_cut_in},
      {"merge_gap", gen_merge_gap},
      {"stop_and_go", gen_stop_and_go},
      {"multi_lane_weave", gen_multi_lane_weave},
  };
  return kGenerators;
}

sim::Scenario ScenarioSampler::candidate(std::uint64_t stream_index,
                                         const std::string& name_suffix) const {
  util::Rng rng(util::derive_run_seed(seed_, stream_index));
  const auto& gens = generators();
  const auto& gen = gens[rng.uniform_index(gens.size())];
  sim::Scenario s = gen.make(rng);
  s.name += name_suffix;
  return s;
}

sim::Scenario ScenarioSampler::sample(std::uint64_t index) const {
  return candidate(index, "_s" + std::to_string(index));
}

std::vector<sim::Scenario> ScenarioSampler::sample_suite(
    std::size_t count) const {
  std::vector<sim::Scenario> suite;
  suite.reserve(count);
  for (std::size_t i = 0; i < count; ++i) suite.push_back(sample(i));
  return suite;
}

std::vector<sim::Scenario> ScenarioSampler::sample_covering(
    std::size_t count, ScenarioCoverage& coverage) const {
  // Candidate c of slot i draws from a stream disjoint from sample()'s
  // (high bit set) so the two modes never alias each other's scenarios.
  constexpr std::uint64_t kCoverStream = 1ULL << 63;
  const std::size_t cands = std::max<std::size_t>(1, options_.candidates_per_draw);
  std::vector<sim::Scenario> suite;
  suite.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sim::Scenario best;
    std::uint32_t best_count = 0;
    for (std::size_t c = 0; c < cands; ++c) {
      sim::Scenario candidate_scn = candidate(
          kCoverStream | (static_cast<std::uint64_t>(i) * cands + c),
          "_c" + std::to_string(i));
      const std::uint32_t in_cell =
          coverage.count_in(coverage.cell_of(scenario_features(candidate_scn)));
      if (c == 0 || in_cell < best_count) {
        best = std::move(candidate_scn);
        best_count = in_cell;
      }
      if (best_count == 0) break;  // can't beat an empty cell
    }
    coverage.add(best);
    suite.push_back(std::move(best));
  }
  return suite;
}

}  // namespace drivefi::scenario
