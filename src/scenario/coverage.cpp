#include "scenario/coverage.h"

#include <sstream>

namespace drivefi::scenario {

namespace {

template <std::size_t N>
std::size_t band_of(double v, const double (&edges)[N]) {
  for (std::size_t i = 0; i < N; ++i)
    if (v < edges[i]) return i;
  return N;
}

template <std::size_t N>
std::string band_label(std::size_t band, const double (&edges)[N]) {
  std::ostringstream out;
  if (band == 0)
    out << "< " << edges[0];
  else if (band == N)
    out << ">= " << edges[N - 1];
  else
    out << "[" << edges[band - 1] << ", " << edges[band] << ")";
  return out.str();
}

}  // namespace

ScenarioFeatures scenario_features(const sim::Scenario& scenario) {
  ScenarioFeatures f;
  f.ego_speed = scenario.world.ego_speed;
  const sim::TvConfig* lead = nullptr;
  for (const auto& tv : scenario.world.vehicles) {
    if (tv.initial_lane != scenario.world.ego_lane || tv.initial_gap <= 0.0)
      continue;
    if (!lead || tv.initial_gap < lead->initial_gap) lead = &tv;
  }
  if (!lead) return f;
  f.lead_gap = lead->initial_gap;
  f.closing_speed = f.ego_speed - lead->initial_speed;
  if (f.closing_speed > 0.1) f.ttc = f.lead_gap / f.closing_speed;
  return f;
}

ScenarioCoverage::ScenarioCoverage()
    : counts_(kSpeedBands * kGapBands * kClosingBands * kTtcBands, 0) {}

std::size_t ScenarioCoverage::cell_of(const ScenarioFeatures& f) const {
  const std::size_t speed = band_of(f.ego_speed, kSpeedEdges);
  // Band 0 of the gap dimension is "no lead"; a leadless scenario pins the
  // closing/TTC dimensions to their canonical bands (closing = 0, TTC huge)
  // so each ego-speed band has exactly one reachable no-lead cell.
  const bool has_lead = f.lead_gap >= 0.0;
  const std::size_t gap = has_lead ? 1 + band_of(f.lead_gap, kGapEdges) : 0;
  const std::size_t closing =
      band_of(has_lead ? f.closing_speed : 0.0, kClosingEdges);
  const std::size_t ttc = band_of(has_lead ? f.ttc : 1e9, kTtcEdges);
  return ((speed * kGapBands + gap) * kClosingBands + closing) * kTtcBands +
         ttc;
}

std::size_t ScenarioCoverage::add(const sim::Scenario& scenario) {
  const std::size_t cell = cell_of(scenario_features(scenario));
  ++counts_[cell];
  ++added_;
  return cell;
}

std::size_t ScenarioCoverage::occupied_cells() const {
  std::size_t occupied = 0;
  for (const auto count : counts_)
    if (count > 0) ++occupied;
  return occupied;
}

double ScenarioCoverage::fraction_covered() const {
  return static_cast<double>(occupied_cells()) /
         static_cast<double>(total_cells());
}

util::Table ScenarioCoverage::to_table() const {
  util::Table table({"feature", "band", "scenarios"});
  // Marginal counts: sum the 4-D grid down to each feature dimension.
  std::vector<std::size_t> speed(kSpeedBands, 0), gap(kGapBands, 0),
      closing(kClosingBands, 0), ttc(kTtcBands, 0);
  for (std::size_t cell = 0; cell < counts_.size(); ++cell) {
    const std::uint32_t n = counts_[cell];
    if (n == 0) continue;
    std::size_t rest = cell;
    const std::size_t t = rest % kTtcBands;
    rest /= kTtcBands;
    const std::size_t c = rest % kClosingBands;
    rest /= kClosingBands;
    const std::size_t g = rest % kGapBands;
    rest /= kGapBands;
    speed[rest] += n;
    gap[g] += n;
    closing[c] += n;
    ttc[t] += n;
  }
  for (std::size_t i = 0; i < kSpeedBands; ++i)
    table.add_row({"ego_speed (m/s)", band_label(i, kSpeedEdges),
                   util::Table::fmt_int(static_cast<long long>(speed[i]))});
  for (std::size_t i = 0; i < kGapBands; ++i)
    table.add_row({"lead_gap (m)",
                   i == 0 ? "no lead" : band_label(i - 1, kGapEdges),
                   util::Table::fmt_int(static_cast<long long>(gap[i]))});
  for (std::size_t i = 0; i < kClosingBands; ++i)
    table.add_row({"closing_speed (m/s)", band_label(i, kClosingEdges),
                   util::Table::fmt_int(static_cast<long long>(closing[i]))});
  for (std::size_t i = 0; i < kTtcBands; ++i)
    table.add_row({"ttc (s)", band_label(i, kTtcEdges),
                   util::Table::fmt_int(static_cast<long long>(ttc[i]))});
  return table;
}

std::string ScenarioCoverage::jsonl_record() const {
  std::ostringstream out;
  out << "{\"type\":\"scenario_coverage\",\"scenarios\":" << added_
      << ",\"cells_total\":" << total_cells()
      << ",\"cells_occupied\":" << occupied_cells()
      << ",\"fraction_covered\":" << fraction_covered() << "}";
  return out.str();
}

}  // namespace drivefi::scenario
