/// \file
/// Scenario-space coverage: a fixed grid over kinematic features of a
/// scenario's initial configuration (ego speed, lead gap, closing speed,
/// time-to-collision band). Campaigns are only as strong as the diversity of
/// the scenario corpus they run against; this grid makes that diversity
/// measurable (which cells of the kinematic envelope does a suite exercise?)
/// and drives the coverage-guided sampler in scenario/generators.h, which
/// preferentially fills empty cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "util/table.h"

namespace drivefi::scenario {

/// Kinematic features of a scenario's initial configuration, derived purely
/// from the config (no simulation): the nearest scripted vehicle ahead of the
/// ego in its lane is the "lead".
struct ScenarioFeatures {
  double ego_speed = 0.0;
  double lead_gap = -1.0;       // m; < 0 when no lead in the ego lane
  double closing_speed = 0.0;   // m/s; ego faster than lead => positive
  double ttc = 1e9;             // s; huge when not closing or no lead
};

ScenarioFeatures scenario_features(const sim::Scenario& scenario);

class ScenarioCoverage {
 public:
  /// Band edges (upper bounds; the last band is open-ended). Lead gap has an
  /// extra leading "none" band for scenarios with an empty ego lane.
  static constexpr double kSpeedEdges[] = {10.0, 20.0, 27.0, 33.0};
  static constexpr double kGapEdges[] = {15.0, 40.0, 100.0};
  static constexpr double kClosingEdges[] = {-2.0, 2.0, 8.0};
  static constexpr double kTtcEdges[] = {3.0, 8.0, 20.0};

  static constexpr std::size_t kSpeedBands = 5;    // 4 edges + open
  static constexpr std::size_t kGapBands = 5;      // none + 3 edges + open
  static constexpr std::size_t kClosingBands = 4;
  static constexpr std::size_t kTtcBands = 4;

  ScenarioCoverage();

  std::size_t cell_of(const ScenarioFeatures& features) const;

  /// Records the scenario and returns the cell it landed in.
  std::size_t add(const sim::Scenario& scenario);

  std::size_t total_cells() const { return counts_.size(); }
  std::size_t occupied_cells() const;
  double fraction_covered() const;
  std::size_t scenarios_added() const { return added_; }
  std::uint32_t count_in(std::size_t cell) const { return counts_[cell]; }

  /// Marginal occupancy per feature band, for human-readable reports.
  util::Table to_table() const;

  /// One JSONL record summarizing grid occupancy, shaped like the campaign
  /// sink records ({"type":"scenario_coverage",...}).
  std::string jsonl_record() const;

 private:
  std::vector<std::uint32_t> counts_;
  std::size_t added_ = 0;
};

}  // namespace drivefi::scenario
