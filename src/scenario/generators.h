/// \file
/// Procedural scenario generation: composable primitives that synthesize
/// sim::Scenario instances from a random stream (lead braking, cut-ins,
/// merges into a gap, stop-and-go waves, multi-lane weaving with
/// IDM-reactive traffic), plus a seeded ScenarioSampler that mass-produces
/// suites from them. Sampling follows the same splitmix64 seed discipline
/// as core::Experiment: scenario `index` of a sampler seeded with `seed`
/// depends only on (seed, index), never on call order, so a sampled corpus
/// is bit-identical across runs, platforms, and thread counts.
///
/// The coverage-guided mode (sample_covering) closes the loop with
/// ScenarioCoverage: each slot draws several candidate scenarios and keeps
/// the one landing in the least-occupied cell of the kinematic grid, so the
/// corpus spreads over the envelope instead of clustering where the
/// parameter distributions happen to concentrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/coverage.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace drivefi::scenario {

/// Primitive generators. Each draws its parameters (speeds, gaps, timings,
/// traffic density) from `rng` and returns a self-contained scenario named
/// after the primitive; callers that need unique names rename afterwards.
sim::Scenario gen_lead_brake(util::Rng& rng);
sim::Scenario gen_cut_in(util::Rng& rng);
sim::Scenario gen_merge_gap(util::Rng& rng);
sim::Scenario gen_stop_and_go(util::Rng& rng);
sim::Scenario gen_multi_lane_weave(util::Rng& rng);

/// The registry the sampler cycles over.
struct Generator {
  std::string name;
  sim::Scenario (*make)(util::Rng&);
};
const std::vector<Generator>& generators();

struct SamplerOptions {
  /// Candidates drawn per slot in coverage-guided mode; higher values
  /// trade generation throughput for faster grid fill.
  std::size_t candidates_per_draw = 8;
};

class ScenarioSampler {
 public:
  using Options = SamplerOptions;

  explicit ScenarioSampler(std::uint64_t seed, Options options = {})
      : seed_(seed), options_(options) {}

  std::uint64_t seed() const { return seed_; }

  /// The index-th scenario of this sampler's stream: a pure function of
  /// (seed, index). Picks a generator uniformly, then lets it draw its
  /// parameters from a stream derived via derive_run_seed.
  sim::Scenario sample(std::uint64_t index) const;

  /// `count` scenarios, indices [0, count); uniform over generators.
  std::vector<sim::Scenario> sample_suite(std::size_t count) const;

  /// Coverage-guided sampling: for each slot draws candidates_per_draw
  /// scenarios and keeps the one whose feature cell currently holds the
  /// fewest scenarios (ties break toward the earliest candidate), recording
  /// it into `coverage`. Deterministic for a given (seed, count, starting
  /// coverage); pass a fresh ScenarioCoverage for a reproducible corpus.
  std::vector<sim::Scenario> sample_covering(std::size_t count,
                                             ScenarioCoverage& coverage) const;

 private:
  sim::Scenario candidate(std::uint64_t stream_index,
                          const std::string& name_suffix) const;

  std::uint64_t seed_;
  Options options_;
};

}  // namespace drivefi::scenario
