#!/usr/bin/env bash
# End-to-end fleet campaign with real SIGKILLs on BOTH sides of the wire:
#
#   1. start drivefi_campaignd and three worker processes,
#   2. kill -9 the COORDINATOR once a few runs are durably in the master
#      store -- in-flight leases die with it, workers lose their sockets,
#   3. restart the daemon with --resume on the SAME port; workers must
#      reconnect with backoff, re-hello, respool their local stores, and
#      carry on,
#   4. kill -9 one WORKER after the restart has made progress (the classic
#      lease-steal path from the pre-chaos harness),
#   5. let the survivors finish and require the merged campaign JSONL to be
#      byte-identical (wall_seconds scrubbed) to a single-process reference
#      run of the same campaign.
#
# Also exercises the observability surface end to end: the resumed daemon
# runs with --metrics-out and --trace-out, a `drivefi_campaign status`
# probe queries the live fleet, surviving workers' telemetry must show
# nonzero fleet.reconnects, and both telemetry files must validate as JSON
# (they are copied into BUILD_DIR for CI artifact upload).
#
#   scripts/fleet_e2e.sh BUILD_DIR [RUNS]
set -euo pipefail

BUILD_DIR=${1:?usage: fleet_e2e.sh BUILD_DIR [RUNS]}
RUNS=${2:-36}
CAMPAIGN_FLAGS=(--runs "$RUNS" --scenarios 2 --seed 1234 --threads 1)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/drivefi_fleet_e2e.XXXXXX")
COORD_PID=""
WORKER_PIDS=()
cleanup() {
  [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
  for pid in "${WORKER_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

scrub() {
  # wall_seconds is always a record's LAST field; dropping it leaves every
  # deterministic byte in place.
  sed -E 's/,"wall_seconds":[^}]*//' "$1"
}

echo "== single-process reference ($RUNS runs) =="
"$BUILD_DIR/drivefi_campaign" run "${CAMPAIGN_FLAGS[@]}" \
  --store "$WORK/ref.store.jsonl" --overwrite > /dev/null
"$BUILD_DIR/drivefi_campaign" merge --jsonl "$WORK/ref.jsonl" \
  "$WORK/ref.store.jsonl" > /dev/null

echo "== coordinator (first sitting) =="
"$BUILD_DIR/drivefi_campaignd" "${CAMPAIGN_FLAGS[@]}" \
  --listen 127.0.0.1:0 --port-file "$WORK/port" \
  --store "$WORK/master.jsonl" --overwrite \
  --lease-runs 4 --heartbeat-timeout 3 \
  --quiet > "$WORK/coordinator1.log" 2>&1 &
COORD_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$COORD_PID" 2>/dev/null || {
    echo "FAIL: coordinator died during startup"; cat "$WORK/coordinator1.log"; exit 1; }
  sleep 0.2
done
PORT=$(cat "$WORK/port")
echo "coordinator on port $PORT"

echo "== status probe =="
# The live-fleet introspection path: a status query needs no campaign
# knowledge and must answer before any worker has connected.
"$BUILD_DIR/drivefi_campaign" status --connect "127.0.0.1:$PORT" \
  | tee "$WORK/status.txt"
grep -q "campaign: 0/$RUNS runs stored" "$WORK/status.txt" || {
  echo "FAIL: status probe did not report the fresh campaign"; exit 1; }

echo "== 3 workers (reconnect-enabled) =="
# The backoff window must comfortably cover the coordinator outage below:
# 150 attempts capped at 2 s apiece is minutes of patience.
for w in 1 2 3; do
  "$BUILD_DIR/drivefi_campaign" worker --connect "127.0.0.1:$PORT" \
    "${CAMPAIGN_FLAGS[@]}" --name "w$w" --store "$WORK/w$w.local.jsonl" \
    --reconnect-max-attempts 150 --reconnect-base-delay 0.1 \
    > "$WORK/w$w.log" 2>&1 &
  WORKER_PIDS+=($!)
done

# Wait until the master store holds a few durable run records (one manifest
# line + >=3 records), then SIGKILL the coordinator mid-campaign.
master_lines() {
  [ -f "$WORK/master.jsonl" ] && wc -l < "$WORK/master.jsonl" || echo 0
}
for _ in $(seq 1 600); do
  [ "$(master_lines)" -ge 4 ] && break
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.05
done
LINES_AT_KILL=$(master_lines)
COORD_KILLED=0
if kill -9 "$COORD_PID" 2>/dev/null; then
  COORD_KILLED=1
  echo "SIGKILLed coordinator (pid $COORD_PID) after $((LINES_AT_KILL - 1)) records"
else
  echo "WARN: coordinator finished before the kill landed; resume is degenerate"
fi
wait "$COORD_PID" 2>/dev/null || true
COORD_PID=""

echo "== coordinator resumed (second sitting) =="
# Same port, --resume: state is rebuilt from the master store alone. Not
# --quiet, so the "resuming" preamble lands in the log for the assertion
# below. Telemetry is attached to this sitting (the one that exits
# cleanly).
"$BUILD_DIR/drivefi_campaignd" "${CAMPAIGN_FLAGS[@]}" \
  --listen "127.0.0.1:$PORT" \
  --store "$WORK/master.jsonl" --resume \
  --lease-runs 4 --heartbeat-timeout 3 \
  --metrics-out "$WORK/fleet.metrics.jsonl" --metrics-interval 0.2 \
  --trace-out "$WORK/fleet.trace.json" \
  --jsonl "$WORK/fleet.jsonl" > "$WORK/coordinator2.log" 2>&1 &
COORD_PID=$!

# Once the resumed sitting has stored at least one NEW record, SIGKILL
# worker 1 -- its lease must be stolen and re-executed by the survivors.
for _ in $(seq 1 600); do
  [ "$(master_lines)" -gt "$LINES_AT_KILL" ] && break
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.05
done
VICTIM=${WORKER_PIDS[0]}
if kill -9 "$VICTIM" 2>/dev/null; then
  echo "SIGKILLed worker 1 (pid $VICTIM) after the resumed sitting made progress"
else
  echo "WARN: worker 1 exited before the kill landed; campaign still valid"
fi

echo "== waiting for the campaign =="
wait "$COORD_PID" || {
  echo "FAIL: resumed coordinator exited nonzero"; cat "$WORK/coordinator2.log"; exit 1; }
COORD_PID=""
wait "$VICTIM" 2>/dev/null || true
for pid in "${WORKER_PIDS[@]:1}"; do
  wait "$pid" || { echo "FAIL: a surviving worker exited nonzero"; exit 1; }
done
WORKER_PIDS=()

echo "== byte-identity =="
if ! diff <(scrub "$WORK/ref.jsonl") <(scrub "$WORK/fleet.jsonl"); then
  echo "FAIL: fleet campaign JSONL diverged from the single-process reference"
  exit 1
fi
grep -E "fleet campaign complete" "$WORK/coordinator2.log" || true
echo "PASS: fleet output byte-identical to the single-process campaign"

echo "== crash-recovery evidence =="
grep -E "^resuming " "$WORK/coordinator2.log" || {
  echo "FAIL: resumed coordinator did not report resuming from the store"
  cat "$WORK/coordinator2.log"; exit 1; }
if [ "$COORD_KILLED" -eq 1 ]; then
  # Every worker lost its socket when the coordinator died; the survivors'
  # telemetry must have counted the reconnects.
  grep -hE '"fleet.reconnects":[1-9]' "$WORK/w2.log" "$WORK/w3.log" || {
    echo "FAIL: no surviving worker reported a reconnect"
    tail -5 "$WORK/w2.log" "$WORK/w3.log"; exit 1; }
  echo "PASS: coordinator crash recovered; workers reconnected"
fi

echo "== telemetry artifacts =="
python3 - "$WORK/fleet.trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace file holds no events"
for event in events:
    assert event["ph"] == "X" and event["cat"] == "drivefi", event
print(f"trace OK: {len(events)} complete events")
PYEOF
python3 - "$WORK/fleet.metrics.jsonl" "$RUNS" <<'PYEOF'
import json, sys
snapshots = [json.loads(line) for line in open(sys.argv[1])]
assert snapshots, "no metrics snapshots written"
for i, snap in enumerate(snapshots):
    assert snap["type"] == "metrics" and snap["seq"] == i, snap
assert snapshots[-1]["fleet.completed_runs"] == int(sys.argv[2]), snapshots[-1]
print(f"metrics OK: {len(snapshots)} snapshots, final fleet.completed_runs "
      f"= {snapshots[-1]['fleet.completed_runs']:g}")
PYEOF
# A telemetry summary line must land on the daemon's stderr at exit.
grep -q '"type":"telemetry"' "$WORK/coordinator2.log" || {
  echo "FAIL: no telemetry summary line in the coordinator log"; exit 1; }
cp "$WORK/fleet.metrics.jsonl" "$WORK/fleet.trace.json" "$BUILD_DIR/"
echo "PASS: telemetry artifacts validate; copied into $BUILD_DIR"
