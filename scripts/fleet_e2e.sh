#!/usr/bin/env bash
# End-to-end fleet campaign with a real SIGKILL: start drivefi_campaignd,
# attach three worker processes, kill one of them (-9) once it has streamed
# at least one record, let the survivors finish, and require the merged
# campaign JSONL to be byte-identical (wall_seconds scrubbed) to a
# single-process reference run of the same campaign.
#
# Also exercises the observability surface end to end: the daemon runs
# with --metrics-out and --trace-out, a `drivefi_campaign status` probe
# queries the live fleet, and both telemetry files must validate as JSON
# (they are copied into BUILD_DIR for CI artifact upload).
#
#   scripts/fleet_e2e.sh BUILD_DIR [RUNS]
set -euo pipefail

BUILD_DIR=${1:?usage: fleet_e2e.sh BUILD_DIR [RUNS]}
RUNS=${2:-36}
CAMPAIGN_FLAGS=(--runs "$RUNS" --scenarios 2 --seed 1234 --threads 1)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/drivefi_fleet_e2e.XXXXXX")
COORD_PID=""
WORKER_PIDS=()
cleanup() {
  [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
  for pid in "${WORKER_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

scrub() {
  # wall_seconds is always a record's LAST field; dropping it leaves every
  # deterministic byte in place.
  sed -E 's/,"wall_seconds":[^}]*//' "$1"
}

echo "== single-process reference ($RUNS runs) =="
"$BUILD_DIR/drivefi_campaign" run "${CAMPAIGN_FLAGS[@]}" \
  --store "$WORK/ref.store.jsonl" --overwrite > /dev/null
"$BUILD_DIR/drivefi_campaign" merge --jsonl "$WORK/ref.jsonl" \
  "$WORK/ref.store.jsonl" > /dev/null

echo "== coordinator =="
"$BUILD_DIR/drivefi_campaignd" "${CAMPAIGN_FLAGS[@]}" \
  --listen 127.0.0.1:0 --port-file "$WORK/port" \
  --store "$WORK/master.jsonl" --overwrite \
  --lease-runs 4 --heartbeat-timeout 3 \
  --metrics-out "$WORK/fleet.metrics.jsonl" --metrics-interval 0.2 \
  --trace-out "$WORK/fleet.trace.json" \
  --jsonl "$WORK/fleet.jsonl" --quiet > "$WORK/coordinator.log" 2>&1 &
COORD_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  kill -0 "$COORD_PID" 2>/dev/null || {
    echo "FAIL: coordinator died during startup"; cat "$WORK/coordinator.log"; exit 1; }
  sleep 0.2
done
PORT=$(cat "$WORK/port")
echo "coordinator on port $PORT"

echo "== status probe =="
# The live-fleet introspection path: a status query needs no campaign
# knowledge and must answer before any worker has connected.
"$BUILD_DIR/drivefi_campaign" status --connect "127.0.0.1:$PORT" \
  | tee "$WORK/status.txt"
grep -q "campaign: 0/$RUNS runs stored" "$WORK/status.txt" || {
  echo "FAIL: status probe did not report the fresh campaign"; exit 1; }

echo "== 3 workers =="
for w in 1 2 3; do
  "$BUILD_DIR/drivefi_campaign" worker --connect "127.0.0.1:$PORT" \
    "${CAMPAIGN_FLAGS[@]}" --name "w$w" --store "$WORK/w$w.local.jsonl" \
    > "$WORK/w$w.log" 2>&1 &
  WORKER_PIDS+=($!)
done

# Wait until worker 1 has at least one run record in its local store (one
# manifest line + >=1 record lines), then SIGKILL it mid-campaign.
VICTIM=${WORKER_PIDS[0]}
for _ in $(seq 1 300); do
  lines=0
  [ -f "$WORK/w1.local.jsonl" ] && lines=$(wc -l < "$WORK/w1.local.jsonl")
  [ "$lines" -ge 2 ] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.1
done
if kill -9 "$VICTIM" 2>/dev/null; then
  echo "SIGKILLed worker 1 (pid $VICTIM) after $((lines - 1)) records"
else
  echo "WARN: worker 1 exited before the kill landed; campaign still valid"
fi

echo "== waiting for the campaign =="
wait "$COORD_PID" || {
  echo "FAIL: coordinator exited nonzero"; cat "$WORK/coordinator.log"; exit 1; }
COORD_PID=""
for pid in "${WORKER_PIDS[@]:1}"; do
  wait "$pid" || { echo "FAIL: a surviving worker exited nonzero"; exit 1; }
done
WORKER_PIDS=()

echo "== byte-identity =="
if ! diff <(scrub "$WORK/ref.jsonl") <(scrub "$WORK/fleet.jsonl"); then
  echo "FAIL: fleet campaign JSONL diverged from the single-process reference"
  exit 1
fi
grep -E "fleet campaign complete" "$WORK/coordinator.log" || true
echo "PASS: fleet output byte-identical to the single-process campaign"

echo "== telemetry artifacts =="
python3 - "$WORK/fleet.trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace file holds no events"
for event in events:
    assert event["ph"] == "X" and event["cat"] == "drivefi", event
print(f"trace OK: {len(events)} complete events")
PYEOF
python3 - "$WORK/fleet.metrics.jsonl" "$RUNS" <<'PYEOF'
import json, sys
snapshots = [json.loads(line) for line in open(sys.argv[1])]
assert snapshots, "no metrics snapshots written"
for i, snap in enumerate(snapshots):
    assert snap["type"] == "metrics" and snap["seq"] == i, snap
assert snapshots[-1]["fleet.completed_runs"] == int(sys.argv[2]), snapshots[-1]
print(f"metrics OK: {len(snapshots)} snapshots, final fleet.completed_runs "
      f"= {snapshots[-1]['fleet.completed_runs']:g}")
PYEOF
# A telemetry summary line must land on the daemon's stderr at exit.
grep -q '"type":"telemetry"' "$WORK/coordinator.log" || {
  echo "FAIL: no telemetry summary line in the coordinator log"; exit 1; }
cp "$WORK/fleet.metrics.jsonl" "$WORK/fleet.trace.json" "$BUILD_DIR/"
echo "PASS: telemetry artifacts validate; copied into $BUILD_DIR"
