// Mine safety-critical faults with the Bayesian selection engine -- the
// paper's core workflow (golden traces -> fit 3-TBN -> counterfactual
// sweep of the fault catalog -> replay the top picks in full simulation).
//
//   ./mine_critical_faults [n_scenarios] [n_replay]
#include <cstdio>
#include <cstdlib>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "core/selector.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  const std::size_t n_scenarios =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t n_replay =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 25;

  auto suite = sim::base_suite();
  suite.resize(std::min(n_scenarios, suite.size()));

  ads::PipelineConfig config;
  config.seed = 7;
  std::printf("running %zu golden scenarios...\n", suite.size());
  const core::Experiment experiment(suite, config);
  const auto& goldens = experiment.goldens();

  std::printf("fitting the 3-TBN on golden traces...\n");
  const core::SafetyPredictor predictor(goldens);

  const auto catalog =
      core::build_catalog(suite, core::default_target_ranges(), 7.5);
  std::printf("fault catalog: %zu candidate faults (%zu scenes x %zu vars x "
              "{min,max})\n",
              catalog.size(), catalog.scene_count, catalog.variable_count);

  const core::BayesianFaultSelector selector(predictor);
  const core::SelectionResult selection = selector.select(catalog, goldens);
  std::printf("Bayesian selection: %zu critical faults in %.2f s (%zu BN "
              "inferences)\n",
              selection.critical.size(), selection.wall_seconds,
              selection.inference_calls);

  // Show the top picks.
  std::printf("\ntop predicted-critical faults:\n");
  const std::size_t show = std::min<std::size_t>(10, selection.critical.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& sf = selection.critical[i];
    std::printf(
        "  %-28s value=%8.2f  scenario=%zu scene=%zu  golden delta=%6.1f -> "
        "predicted delta=%6.1f\n",
        sf.fault.target.c_str(), sf.fault.value, sf.fault.scenario_index,
        sf.fault.scene_index, sf.golden_delta_lon, sf.prediction.delta_lon);
  }

  // Validate the top picks in full simulation.
  std::vector<core::SelectedFault> top(
      selection.critical.begin(),
      selection.critical.begin() +
          std::min(n_replay, selection.critical.size()));
  std::printf("\nreplaying %zu selected faults in full simulation...\n",
              top.size());
  const core::CampaignStats replay =
      experiment.run(core::SelectedFaultModel(top));
  core::outcome_table(replay).print("replay outcomes");
  core::validation_table(selection, replay, catalog.scene_count)
      .print("validation summary");
  return 0;
}
