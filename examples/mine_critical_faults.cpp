// Mine safety-critical faults with the Bayesian selection engine -- the
// paper's core workflow (golden traces -> fit k-TBN -> parallel
// counterfactual sweep of the fault catalog -> replay F_crit in full
// simulation), packaged as a single Experiment campaign over a scenario
// corpus (built-in or a .scn file).
//
//   ./mine_critical_faults [n_scenarios] [n_replay] [options]
//     --scn FILE      load the scenario corpus from a .scn suite
//     --load-bn FILE  reuse a fitted predictor (skips the k-TBN refit)
//     --save-bn FILE  persist the fitted predictor for later campaigns
//     --jsonl FILE    stream selection + run records as JSONL
//     --threads N     selection/replay thread count (0 = all hardware)
//     --fork / --no-fork      toggle fork-from-golden replay (default: on)
//     --checkpoint-stride N   scenes between golden checkpoints (default 4)
//
// This walkthrough narrates the paper's workflow; for production campaigns
// (sharding across machines, crash-safe stores, --resume, merge) use the
// unified CLI instead: `drivefi_campaign run --model bayesian ...`
// (examples/drivefi_campaign.cpp) -- it subsumes every flag above.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "core/selector.h"
#include "scenario/dsl.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  std::size_t n_scenarios = 0;  // 0 = default (4 built-in / whole .scn corpus)
  std::size_t n_replay = 25;
  std::string scn_path, load_bn, save_bn, jsonl_path;
  unsigned threads = 0;
  bool fork_replays = true;
  std::size_t checkpoint_stride = 4;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scn") scn_path = next();
    else if (arg == "--load-bn") load_bn = next();
    else if (arg == "--save-bn") save_bn = next();
    else if (arg == "--jsonl") jsonl_path = next();
    else if (arg == "--threads") threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--fork") fork_replays = true;
    else if (arg == "--no-fork") fork_replays = false;
    else if (arg == "--checkpoint-stride")
      checkpoint_stride = static_cast<std::size_t>(std::atoi(next()));
    else if (positional == 0) { n_scenarios = static_cast<std::size_t>(std::atoi(arg.c_str())); ++positional; }
    else if (positional == 1) { n_replay = static_cast<std::size_t>(std::atoi(arg.c_str())); ++positional; }
    else { std::fprintf(stderr, "error: unexpected argument %s\n", arg.c_str()); return 2; }
  }

  auto suite = scn_path.empty() ? sim::base_suite()
                                : scenario::load_suite(scn_path);
  // No explicit count: a loaded corpus is swept in full (truncating a
  // user-supplied .scn silently would misreport coverage); the built-in
  // library keeps its small default.
  if (n_scenarios == 0) n_scenarios = scn_path.empty() ? 4 : suite.size();
  suite.resize(std::min(n_scenarios, suite.size()));

  ads::PipelineConfig config;
  config.seed = 7;
  core::ExperimentOptions options;
  options.executor.threads = threads;
  options.fork_replays = fork_replays;
  options.checkpoint_stride = checkpoint_stride;
  std::printf("running %zu golden scenarios%s (fork-from-golden %s, "
              "checkpoint stride %zu)...\n",
              suite.size(), scn_path.empty() ? "" : (" from " + scn_path).c_str(),
              fork_replays ? "on" : "off", checkpoint_stride);
  const core::Experiment experiment(suite, config, {}, options);

  // The full DriveFI loop as one fault model: fit (or load) the k-TBN,
  // sweep the catalog in parallel, keep the top n_replay of F_crit.
  core::BayesianCampaignConfig campaign;
  campaign.max_replays = n_replay;
  campaign.selection.executor.threads = threads;

  std::unique_ptr<core::BayesianFaultModel> model;
  if (!load_bn.empty()) {
    std::printf("loading fitted predictor from %s (no refit)...\n",
                load_bn.c_str());
    auto predictor = std::make_shared<const core::SafetyPredictor>(
        core::load_predictor(load_bn));
    model = std::make_unique<core::BayesianFaultModel>(experiment, predictor,
                                                       campaign);
  } else {
    std::printf("fitting the %d-TBN on golden traces...\n",
                campaign.predictor.slices);
    model = std::make_unique<core::BayesianFaultModel>(experiment, campaign);
  }
  if (!save_bn.empty()) {
    core::save_predictor(model->predictor(), save_bn);
    std::printf("saved fitted predictor to %s\n", save_bn.c_str());
  }

  const core::SelectionResult& selection = model->selection();
  std::printf("fault catalog: %zu candidate faults (%zu scenes x %zu vars x "
              "{min,max})\n",
              model->catalog().size(), model->catalog().scene_count,
              model->catalog().variable_count);
  std::printf("Bayesian selection: %zu critical faults in %.2f s (%zu BN "
              "inferences, skipped: %zu unmapped / %zu no-window / %zu "
              "no-lead / %zu golden-unsafe)\n",
              selection.critical.size(), selection.wall_seconds,
              selection.inference_calls, selection.skipped_unmapped,
              selection.skipped_no_window, selection.skipped_no_lead,
              selection.skipped_golden_unsafe);

  // Show the top picks.
  std::printf("\ntop predicted-critical faults:\n");
  const std::size_t show = std::min<std::size_t>(10, selection.critical.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& sf = selection.critical[i];
    std::printf(
        "  %-28s value=%8.2f  scenario=%zu scene=%zu  golden delta=%6.1f -> "
        "predicted delta=%6.1f\n",
        sf.fault.target.c_str(), sf.fault.value, sf.fault.scenario_index,
        sf.fault.scene_index, sf.golden_delta_lon, sf.prediction.delta_lon);
  }

  // Validate F_crit in full simulation; the selection record and every
  // replay stream to the JSONL sink when requested.
  std::printf("\nreplaying %zu selected faults in full simulation...\n",
              model->run_count());
  std::ofstream jsonl_file;
  std::vector<core::ResultSink*> sinks;
  std::unique_ptr<core::JsonlSink> jsonl;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
      return 1;
    }
    jsonl = std::make_unique<core::JsonlSink>(jsonl_file);
    sinks.push_back(jsonl.get());
  }
  const core::CampaignStats replay = experiment.run(*model, sinks);
  core::outcome_table(replay).print("replay outcomes");
  std::printf("replay wall-clock: %.2f s for %zu runs (fork %s",
              replay.wall_seconds, replay.total(), fork_replays ? "on" : "off");
  if (experiment.forked_runs_executed() > 0)
    std::printf("; %zu forked, %zu spliced, mean %.4f s/run vs %.4f s full",
                experiment.forked_runs_executed(),
                experiment.spliced_runs_executed(),
                experiment.mean_forked_run_wall_seconds(),
                experiment.mean_run_wall_seconds());
  std::printf(")\n");
  core::validation_table(selection, replay, model->catalog().scene_count)
      .print("validation summary");
  if (!jsonl_path.empty())
    std::printf("wrote selection + %zu run records to %s\n", replay.total(),
                jsonl_path.c_str());
  return 0;
}
