// drivefi_query: offline analytics over durable campaign stores -- no
// re-execution, no coordinator, just the files. Stores may be JSONL or
// binary (or a mixture); each file's own magic bytes decide how it is
// read, and partial campaigns (in-flight, or a single shard) are fair
// game for everything except export.
//
//   drivefi_query summary STORE [STORE ...]
//     Outcome counts and order statistics (min/mean/p50/p90/p99/max) of
//     min_delta_lon and max_actuation_divergence over the loaded records.
//
//   drivefi_query scenarios STORE [STORE ...]
//     Per-scenario violation table: outcome counts, distinct hazard
//     scenes, and the worst min_delta_lon seen in each scenario.
//
//   drivefi_query get --run N STORE [STORE ...]
//     Prints the single record with run_index N as canonical run JSONL
//     (byte-identical to the line a JSONL store would hold). Exits 1 when
//     the loaded stores do not contain N.
//
//   drivefi_query diff STORE_A STORE_B
//     Run-by-run comparison of two campaigns over the SAME fault set
//     (model, params, planned runs, scenario corpus must match;
//     pipeline seed / ADS config may differ -- that is the experiment).
//     Lists flipped outcomes and metric drifts; exits 1 when the
//     campaigns differ, 0 when identical (so scripts can assert).
//
//   drivefi_query export --jsonl OUT STORE [STORE ...]
//     Re-exports a COMPLETE campaign as canonical campaign JSONL --
//     byte-identical to `drivefi_campaign merge --jsonl` over the same
//     shard set (it routes through the same merge path).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/report.h"
#include "util/table.h"

using namespace drivefi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summary STORE... | %s scenarios STORE... |\n"
               "       %s get --run N STORE... | %s diff STORE_A STORE_B |\n"
               "       %s export --jsonl OUT STORE...\n"
               "(stores may be jsonl or binary, mixed freely; see the header\n"
               " of examples/drivefi_query.cpp or docs/FORMATS.md)\n",
               argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

void print_counts(const core::OutcomeCounts& counts) {
  util::Table table({"outcome", "count", "share"});
  const auto row = [&](const char* name, std::size_t n) {
    const double share =
        counts.total() > 0
            ? 100.0 * static_cast<double>(n) /
                  static_cast<double>(counts.total())
            : 0.0;
    char share_text[32];
    std::snprintf(share_text, sizeof(share_text), "%.1f%%", share);
    table.add_row({name, std::to_string(n), share_text});
  };
  row("masked", counts.masked);
  row("sdc_benign", counts.sdc_benign);
  row("hang", counts.hang);
  row("hazard", counts.hazard);
  table.add_row({"total", std::to_string(counts.total()), "100.0%"});
  table.print("outcomes");
}

void print_metric(const char* name, const core::MetricSummary& summary) {
  std::printf(
      "%-24s min %12.6g  mean %12.6g  p50 %12.6g  p90 %12.6g  p99 %12.6g  "
      "max %12.6g\n",
      name, summary.min, summary.mean, summary.p50, summary.p90, summary.p99,
      summary.max);
}

int cmd_summary(const std::vector<std::string>& paths) {
  const core::CampaignView view = core::load_campaign(paths);
  std::printf("campaign: model %s (%s), %zu of %zu planned runs loaded from "
              "%zu store(s)%s\n",
              view.manifest.model.c_str(), view.manifest.model_params.c_str(),
              view.records.size(), view.manifest.planned_runs, paths.size(),
              view.complete() ? "" : " [INCOMPLETE]");
  if (view.records.empty()) {
    std::printf("no records stored yet\n");
    return 0;
  }
  print_counts(core::count_outcomes(view.records));
  print_metric("min_delta_lon",
               core::summarize_metric(view.records,
                                      core::RecordMetric::kMinDeltaLon));
  print_metric("max_actuation_divergence",
               core::summarize_metric(
                   view.records, core::RecordMetric::kMaxActuationDivergence));
  return 0;
}

int cmd_scenarios(const std::vector<std::string>& paths) {
  const core::CampaignView view = core::load_campaign(paths);
  util::Table table({"scenario", "runs", "masked", "sdc", "hang", "hazard",
                     "hazard scenes", "worst d_lon"});
  for (const core::ScenarioRow& row : core::scenario_table(view)) {
    char worst[32];
    std::snprintf(worst, sizeof(worst), "%.6g", row.worst_min_delta_lon);
    table.add_row({std::to_string(row.scenario_index),
                   std::to_string(row.counts.total()),
                   std::to_string(row.counts.masked),
                   std::to_string(row.counts.sdc_benign),
                   std::to_string(row.counts.hang),
                   std::to_string(row.counts.hazard),
                   std::to_string(row.hazard_scenes), worst});
  }
  table.print("per-scenario violations");
  return 0;
}

int cmd_get(std::size_t run_index, const std::vector<std::string>& paths) {
  const core::CampaignView view = core::load_campaign(paths);
  core::InjectionRecord record;
  if (!core::lookup_run(view, run_index, &record)) {
    std::fprintf(stderr, "error: no record with run_index %zu in %zu loaded "
                 "record(s)\n",
                 run_index, view.records.size());
    return 1;
  }
  std::printf("%s\n", core::run_record_jsonl(record).c_str());
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const core::CampaignView a = core::load_campaign({path_a});
  const core::CampaignView b = core::load_campaign({path_b});
  const core::CampaignDiff diff = core::diff_campaigns(a, b);

  std::printf("compared %zu run(s): %zu changed, %zu only in %s, %zu only "
              "in %s\n",
              diff.compared, diff.changed.size(), diff.only_a.size(),
              path_a.c_str(), diff.only_b.size(), path_b.c_str());
  for (const core::DiffEntry& entry : diff.changed) {
    if (entry.outcome_flipped)
      std::printf("run %zu: outcome %s -> %s\n", entry.run_index,
                  core::outcome_name(entry.a.outcome),
                  core::outcome_name(entry.b.outcome));
    else
      std::printf("run %zu: metrics drifted (min_delta_lon %.17g -> %.17g, "
                  "max_actuation_divergence %.17g -> %.17g)\n",
                  entry.run_index, entry.a.min_delta_lon,
                  entry.b.min_delta_lon, entry.a.max_actuation_divergence,
                  entry.b.max_actuation_divergence);
  }
  if (diff.identical()) {
    std::printf("campaigns are identical\n");
    return 0;
  }
  return 1;
}

int cmd_export(const std::string& jsonl_path,
               const std::vector<std::string>& paths) {
  // Route through merge_shards so the export is the SAME canonical bytes
  // as `drivefi_campaign merge --jsonl` -- including its completeness
  // validation (export of a partial campaign is refused).
  const core::MergedCampaign merged = core::merge_shards(paths);
  std::ofstream out(jsonl_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
    return 1;
  }
  core::write_merged_jsonl(merged, out);
  std::printf("exported %zu run(s) as canonical campaign JSONL to %s\n",
              merged.stats.total(), jsonl_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];

  std::vector<std::string> paths;
  std::string jsonl_path;
  std::size_t run_index = 0;
  bool have_run = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--run") {
      run_index = static_cast<std::size_t>(std::atoll(next()));
      have_run = true;
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  try {
    if (command == "summary" && !paths.empty()) return cmd_summary(paths);
    if (command == "scenarios" && !paths.empty()) return cmd_scenarios(paths);
    if (command == "get" && have_run && !paths.empty())
      return cmd_get(run_index, paths);
    if (command == "diff" && paths.size() == 2)
      return cmd_diff(paths[0], paths[1]);
    if (command == "export" && !jsonl_path.empty() && !paths.empty())
      return cmd_export(jsonl_path, paths);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(argv[0]);
}
