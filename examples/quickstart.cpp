// Quickstart: run one driving scenario through the full ADS pipeline,
// inject a single throttle fault, and classify the outcome.
//
//   ./quickstart
//
// This is the smallest end-to-end use of the public API: build an
// Experiment (which precomputes the golden baseline), describe a fault,
// replay it, classify. Campaigns use the same engine with a FaultModel --
// see random_vs_bayesian.cpp.
#include <cstdio>

#include "core/experiment.h"
#include "core/outcome.h"
#include "sim/scenario.h"

using namespace drivefi;

int main() {
  // 1. Pick a scenario from the library (lead car cruising ahead).
  const sim::Scenario scenario = sim::base_suite()[1];
  std::printf("scenario: %s\n  %s\n", scenario.name.c_str(),
              scenario.description.c_str());

  // 2. Configure the ADS (defaults mirror an Apollo-like stack: 30 Hz
  //    perception/planning/control, 10 Hz GPS, EKF fusion, PID smoothing)
  //    and build the engine; golden (fault-free) baselines are computed
  //    eagerly, one per scenario.
  ads::PipelineConfig config;
  config.seed = 1;
  const core::Experiment experiment({scenario}, config);

  const core::GoldenTrace& golden = experiment.goldens()[0];
  std::printf("golden run: %zu scenes, final delta_lon = %.1f m, %s\n",
              golden.scenes.size(), golden.scenes.back().true_delta_lon,
              golden.scenes.back().collided ? "COLLIDED" : "no collision");

  // 3. Describe a fault: corrupt the throttle command to its max for one
  //    second, mid-scenario (paper fault model (b) on A_t).
  core::CandidateFault fault;
  fault.scenario_index = 0;
  fault.inject_time = 15.0;
  fault.target = "control.throttle";
  fault.value = 1.0;

  // 4. Replay it against the golden baseline and classify.
  const core::RunResult result =
      experiment.replay_value_fault(fault, /*hold_seconds=*/1.0);
  std::printf("injected run: outcome = %s (%s)\n",
              core::outcome_name(result.outcome), result.detail.c_str());
  std::printf("  max actuation divergence: %.3f\n",
              result.max_actuation_divergence);
  std::printf("  min delta_lon over run:   %.1f m\n", result.min_delta_lon);
  return 0;
}
