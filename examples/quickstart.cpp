// Quickstart: run one driving scenario through the full ADS pipeline,
// inject a single throttle fault, and classify the outcome.
//
//   ./quickstart
//
// This is the smallest end-to-end use of the public API: scenario ->
// golden run -> injected run -> outcome classification.
#include <cstdio>

#include "core/campaign.h"
#include "core/outcome.h"
#include "sim/scenario.h"

using namespace drivefi;

int main() {
  // 1. Pick a scenario from the library (lead car cruising ahead).
  const sim::Scenario scenario = sim::base_suite()[1];
  std::printf("scenario: %s\n  %s\n", scenario.name.c_str(),
              scenario.description.c_str());

  // 2. Configure the ADS (defaults mirror an Apollo-like stack: 30 Hz
  //    perception/planning/control, 10 Hz GPS, EKF fusion, PID smoothing).
  ads::PipelineConfig config;
  config.seed = 1;

  // 3. Golden (fault-free) run.
  const core::GoldenTrace golden = core::run_golden(scenario, config);
  std::printf("golden run: %zu scenes, final delta_lon = %.1f m, %s\n",
              golden.scenes.size(), golden.scenes.back().true_delta_lon,
              golden.scenes.back().collided ? "COLLIDED" : "no collision");

  // 4. Injected run: corrupt the throttle command to its max for one
  //    second, mid-scenario (paper fault model (b) on A_t).
  sim::World world(scenario.world);
  ads::AdsPipeline pipeline(world, config);
  ads::ValueFault fault;
  fault.target = "control.throttle";
  fault.value = 1.0;
  fault.start_time = 15.0;
  fault.hold_duration = 1.0;
  pipeline.arm_value_fault(fault);
  pipeline.run_for(scenario.duration);

  // 5. Classify against the golden baseline.
  const core::RunResult result = core::classify_run(
      golden.scenes, pipeline.scenes(), pipeline.any_module_hung());
  std::printf("injected run: outcome = %s (%s)\n",
              core::outcome_name(result.outcome), result.detail.c_str());
  std::printf("  max actuation divergence: %.3f\n",
              result.max_actuation_divergence);
  std::printf("  min delta_lon over run:   %.1f m\n", result.min_delta_lon);
  return 0;
}
