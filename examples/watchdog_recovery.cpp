// Watchdog recovery: demonstrate the safing backup the paper expects to
// recover from hangs/crashes ("recovery from such faults can be done with
// the backup/redundant systems that are present in AVs today").
//
//   ./watchdog_recovery
//
// A NaN corruption kills the control module mid-cruise. Without the
// watchdog, the last (stale) command keeps driving the car; with it, the
// backup engages within 100 ms and brakes to a minimal-risk stop.
#include <cstdio>
#include <limits>

#include "ads/pipeline.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

void run_once(bool watchdog_enabled) {
  const sim::Scenario scenario = sim::base_suite()[1];  // lead cruise
  sim::World world(scenario.world);

  ads::PipelineConfig config;
  config.seed = 2;
  config.watchdog.enabled = watchdog_enabled;
  ads::AdsPipeline pipeline(world, config);

  // Fault: a NaN lands in the planner's target acceleration. The control
  // module refuses to consume it and is marked hung for the rest of the
  // run -- the paper's "hang" outcome class.
  ads::ValueFault fault;
  fault.target = "plan.target_accel";
  fault.value = std::numeric_limits<double>::quiet_NaN();
  fault.start_time = 12.0;
  fault.hold_duration = 0.2;
  pipeline.arm_value_fault(fault);

  pipeline.run_for(scenario.duration);

  std::printf("\n-- watchdog %s --\n", watchdog_enabled ? "ENABLED" : "disabled");
  std::printf("hung modules:      ");
  for (const auto& m : pipeline.hung_modules()) std::printf("%s ", m.c_str());
  std::printf("\nwatchdog engaged:  %s\n",
              pipeline.watchdog_engaged() ? "yes" : "no");
  std::printf("final ego speed:   %.1f m/s\n", world.ego().v);
  std::printf("collided:          %s\n",
              world.status().collided ? "YES" : "no");
}

}  // namespace

int main() {
  std::printf("Scenario: control module dies at t = 12 s while following "
              "a lead car at highway speed.\n");
  run_once(false);
  run_once(true);
  std::printf("\nThe E8 bench quantifies this over a whole campaign "
              "(bench_e8_resilience_ablation).\n");
  return 0;
}
