// Contrast random fault injection with Bayesian fault selection on the
// same budget -- the paper's central claim: random FI essentially never
// finds safety-critical faults, Bayesian FI finds them immediately.
//
//   ./random_vs_bayesian [budget]
#include <cstdio>
#include <cstdlib>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "core/selector.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;

  std::vector<sim::Scenario> suite = {sim::example1_lead_lane_change(),
                                      sim::base_suite()[2],
                                      sim::base_suite()[4]};
  ads::PipelineConfig config;
  config.seed = 11;
  const core::Experiment experiment(suite, config);

  // --- Random FI with `budget` injections ---
  std::printf("random value-corruption campaign (%zu injections)...\n",
              budget);
  const core::CampaignStats random_stats =
      experiment.run(core::RandomValueModel(budget, 1234));
  core::outcome_table(random_stats).print("random FI outcomes");

  // --- Bayesian FI replaying its top `budget` picks: the whole DriveFI
  // loop (fit -> parallel select -> replay) is one fault model. ---
  std::printf("\nBayesian selection + replay (%zu replays)...\n", budget);
  core::BayesianCampaignConfig campaign;
  campaign.max_replays = budget;
  const core::BayesianFaultModel bayes_model(experiment, campaign);
  const core::CampaignStats bayes_stats = experiment.run(bayes_model);
  core::outcome_table(bayes_stats).print("Bayesian FI outcomes");

  std::printf("\nhazards found -- random: %zu / %zu, Bayesian: %zu / %zu\n",
              random_stats.hazard, random_stats.total(), bayes_stats.hazard,
              bayes_stats.total());
  return 0;
}
