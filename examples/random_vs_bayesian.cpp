// Contrast random fault injection with Bayesian fault selection on the
// same budget -- the paper's central claim: random FI essentially never
// finds safety-critical faults, Bayesian FI finds them immediately.
//
//   ./random_vs_bayesian [budget] [options]
//     --fork / --no-fork      toggle fork-from-golden replay (default: on)
//     --checkpoint-stride N   scenes between golden checkpoints (default 4)
//
// This walkthrough contrasts the two models side by side; to run either
// model as a durable, shardable, resumable campaign use the unified CLI:
// `drivefi_campaign run --model random-value|random-bitflip|bayesian ...`
// (examples/drivefi_campaign.cpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "core/selector.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  std::size_t budget = 30;
  bool fork_replays = true;
  std::size_t checkpoint_stride = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fork") {
      fork_replays = true;
    } else if (arg == "--no-fork") {
      fork_replays = false;
    } else if (arg == "--checkpoint-stride") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --checkpoint-stride needs a value\n");
        return 2;
      }
      checkpoint_stride = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg.find_first_not_of("0123456789") ==
                                   std::string::npos) {
      budget = static_cast<std::size_t>(std::atoi(arg.c_str()));
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<sim::Scenario> suite = {sim::example1_lead_lane_change(),
                                      sim::base_suite()[2],
                                      sim::base_suite()[4]};
  ads::PipelineConfig config;
  config.seed = 11;
  core::ExperimentOptions options;
  options.fork_replays = fork_replays;
  options.checkpoint_stride = checkpoint_stride;
  const core::Experiment experiment(suite, config, {}, options);
  std::printf("fork-from-golden replay %s (checkpoint stride %zu)\n",
              fork_replays ? "on" : "off", checkpoint_stride);

  // --- Random FI with `budget` injections ---
  std::printf("random value-corruption campaign (%zu injections)...\n",
              budget);
  const core::CampaignStats random_stats =
      experiment.run(core::RandomValueModel(budget, 1234));
  core::outcome_table(random_stats).print("random FI outcomes");
  std::printf("random campaign wall-clock: %.2f s\n",
              random_stats.wall_seconds);

  // --- Bayesian FI replaying its top `budget` picks: the whole DriveFI
  // loop (fit -> parallel select -> replay) is one fault model. ---
  std::printf("\nBayesian selection + replay (%zu replays)...\n", budget);
  core::BayesianCampaignConfig campaign;
  campaign.max_replays = budget;
  const core::BayesianFaultModel bayes_model(experiment, campaign);
  const core::CampaignStats bayes_stats = experiment.run(bayes_model);
  core::outcome_table(bayes_stats).print("Bayesian FI outcomes");
  std::printf("Bayesian replay wall-clock: %.2f s\n", bayes_stats.wall_seconds);

  if (experiment.forked_runs_executed() > 0)
    std::printf("\nforked replays: %zu (%zu spliced), mean %.4f s/run vs "
                "%.4f s full-sim\n",
                experiment.forked_runs_executed(),
                experiment.spliced_runs_executed(),
                experiment.mean_forked_run_wall_seconds(),
                experiment.mean_run_wall_seconds());

  std::printf("\nhazards found -- random: %zu / %zu, Bayesian: %zu / %zu\n",
              random_stats.hazard, random_stats.total(), bayes_stats.hazard,
              bayes_stats.total());
  return 0;
}
