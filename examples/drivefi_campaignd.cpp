// drivefi_campaignd: the fleet coordinator daemon. Owns one campaign's
// authoritative merged store, leases run-index batches to workers
// (drivefi_campaign worker --connect), re-grants leases whose workers die
// or stall (work stealing), and streams a live fleet status line. When the
// last planned run is durably stored it notifies the fleet, optionally
// writes the canonical campaign JSONL, prints the outcome table, and
// exits 0.
//
//   drivefi_campaignd [campaign options] [daemon options]
//     (campaign options: see campaign_cli.h -- MUST match the workers')
//     --listen HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral)
//     --port-file FILE     write the bound port (scripts + ephemeral ports)
//     --store FILE         master store path (default campaign.master.jsonl,
//                          or .bin with --store-format binary)
//     --store-format F     master store container: jsonl (default) or
//                          binary (docs/FORMATS.md "Binary record store")
//     --resume             continue an interrupted campaign's master store.
//                          This is the crash-recovery path: after a kill -9
//                          the daemon rebuilds all state from the store
//                          (completed indices are done; in-flight leases
//                          died with the process and are simply re-granted
//                          -- safe because duplicates are byte-identical
//                          no-ops), re-listens, and accepts reconnecting
//                          workers as if nothing happened.
//     --overwrite          discard an existing master store
//     --lease-runs N       run indices per lease (default 16)
//     --heartbeat-timeout S  seconds of silence before a lease is re-granted
//                          (default 5)
//     --jsonl OUT          write the canonical campaign JSONL on completion
//     --quiet              no live progress line
//     --metrics-out FILE   periodic fleet metrics snapshots (JSONL)
//     --metrics-interval S snapshot cadence in seconds (default 1)
//     --trace-out FILE     Chrome trace-event JSON of coordinator spans
//     A final {"type":"telemetry"} summary line lands on stderr at exit;
//     `drivefi_campaign status --connect HOST:PORT` queries a live fleet.
//
// The merged output is byte-identical (wall_seconds aside) to
// `drivefi_campaign run` of the same campaign -- regardless of worker
// count, lease movement, steals, or workers killed mid-lease. That is the
// determinism contract, and tests/determinism_test.cpp plus
// scripts/fleet_e2e.sh hold the daemon to it.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "campaign_cli.h"
#include "coord/coordinator.h"
#include "core/manifest.h"
#include "core/report.h"
#include "core/result_store.h"
#include "obs/metrics.h"
#include "obs/span.h"

using namespace drivefi;

int main(int argc, char** argv) {
  campaign_cli::CampaignArgs args;
  coord::CoordinatorConfig config;
  std::string store_path;
  core::StoreFormat store_format = core::StoreFormat::kJsonl;
  std::string port_file, jsonl_path, trace_out;
  bool resume = false, overwrite = false, quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (campaign_cli::parse_campaign_flag(args, arg, next)) continue;
    if (arg == "--listen")
      campaign_cli::parse_host_port(next(), &config.host, &config.port);
    else if (arg == "--port-file") port_file = next();
    else if (arg == "--store") store_path = next();
    else if (arg == "--store-format")
      store_format = core::parse_store_format(next());
    else if (arg == "--resume") resume = true;
    else if (arg == "--overwrite") overwrite = true;
    else if (arg == "--lease-runs")
      config.lease_runs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--heartbeat-timeout")
      config.heartbeat_timeout = std::atof(next());
    else if (arg == "--jsonl") jsonl_path = next();
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--metrics-out") config.metrics_out = next();
    else if (arg == "--metrics-interval")
      config.metrics_interval_seconds = std::atof(next());
    else if (arg == "--trace-out") trace_out = next();
    else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (resume && overwrite) {
    std::fprintf(stderr, "error: --resume and --overwrite are exclusive\n");
    return 2;
  }
  config.print_progress = !quiet;
  if (store_path.empty())
    store_path = store_format == core::StoreFormat::kBinary
                     ? "campaign.master.bin"
                     : "campaign.master.jsonl";

  try {
    if (!trace_out.empty()) obs::start_tracing(trace_out);
    // Same pre-flight as `run`: refuse to clobber durable work before the
    // golden precompute is spent.
    if (!resume && !overwrite &&
        core::stored_record_count(store_path) > 0) {
      std::fprintf(stderr,
                   "error: refusing to overwrite %s: it already holds run "
                   "records; resume it (--resume) or discard it explicitly "
                   "(--overwrite)\n",
                   store_path.c_str());
      return 1;
    }

    campaign_cli::CampaignSetup setup =
        campaign_cli::build_campaign(args, quiet);
    const core::CampaignManifest manifest = core::make_manifest(
        *setup.experiment, *setup.model, setup.scenario_spec);

    const core::StoreOpenMode mode =
        resume ? core::StoreOpenMode::kResume
               : overwrite ? core::StoreOpenMode::kOverwrite
                           : core::StoreOpenMode::kFresh;
    if (resume)
      store_format = core::detect_store_format(store_path, store_format);
    const std::unique_ptr<core::ShardStore> store_ptr =
        core::open_shard_store(store_path, manifest, store_format, mode);
    core::ShardStore& store = *store_ptr;
    if (resume && !store.completed().empty() && !quiet)
      std::printf("resuming %s: %zu of %zu runs already stored\n",
                  store_path.c_str(), store.completed().size(),
                  manifest.planned_runs);

    coord::Coordinator coordinator(manifest, store, config);
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      out << coordinator.port() << "\n";
      if (!out.flush()) {
        std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
        return 1;
      }
    }
    std::printf("coordinator listening on %s:%u  (%zu of %zu runs stored; "
                "lease %zu runs, heartbeat timeout %.1f s)\n",
                config.host.c_str(), coordinator.port(),
                store.completed().size(), manifest.planned_runs,
                config.lease_runs, config.heartbeat_timeout);
    std::fflush(stdout);

    const coord::FleetStats fleet = coordinator.serve();
    if (!trace_out.empty()) obs::stop_tracing();
    std::fprintf(stderr, "%s\n",
                 obs::telemetry_jsonl(fleet.wall_seconds).c_str());
    std::printf("fleet campaign complete: %zu runs stored this sitting "
                "(%zu resumed from the store, %zu duplicates dropped), "
                "%zu leases granted / %zu expired / %zu stolen, %zu workers, "
                "%.2f s\n",
                fleet.runs_completed, fleet.resumed_runs,
                fleet.duplicates_dropped, fleet.leases_granted,
                fleet.leases_expired, fleet.leases_stolen, fleet.workers_seen,
                fleet.wall_seconds);

    const core::MergedCampaign merged = core::merge_shards({store_path});
    core::outcome_table(merged.stats).print("campaign outcomes");
    if (!jsonl_path.empty()) {
      std::ofstream out(jsonl_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
        return 1;
      }
      core::write_merged_jsonl(merged, out);
      std::printf("wrote canonical campaign JSONL to %s\n",
                  jsonl_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
