// Recreate the paper's Example 2 (the Tesla Autopilot crash, Fig. 4): the
// lead vehicle swerves away late, revealing a nearly stopped vehicle. A
// perception fault that delays recognition of the revealed vehicle turns
// a recoverable situation into a collision.
//
//   ./tesla_replay
#include <cstdio>

#include "core/outcome.h"
#include "core/trace.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

void print_timeline(const char* label,
                    const std::vector<ads::SceneRecord>& scenes) {
  std::printf("\n%s\n", label);
  std::printf("%8s %10s %10s %12s %10s\n", "t (s)", "ego v", "lead gap",
              "delta_lon", "status");
  for (std::size_t i = 0; i < scenes.size(); i += 15) {  // every 2 s
    const auto& s = scenes[i];
    std::printf("%8.1f %10.1f %10.1f %12.1f %10s\n", s.t, s.true_v,
                s.lead_gap, s.true_delta_lon,
                s.collided ? "COLLIDED" : (s.true_delta_lon <= 0.0 ? "UNSAFE"
                                                                    : "ok"));
  }
  std::printf("  final: %s\n",
              scenes.back().collided ? "COLLISION" : "no collision");
}

}  // namespace

int main() {
  const sim::Scenario scenario = sim::example2_tesla_reveal();
  std::printf("scenario: %s\n  %s\n", scenario.name.c_str(),
              scenario.description.c_str());

  ads::PipelineConfig config;
  config.seed = 3;

  // Fault-free: the ADS sees the revealed vehicle in time and brakes.
  const core::GoldenTrace golden = core::run_golden(scenario, config);
  print_timeline("golden run (no fault):", golden.scenes);

  // Perception-delay fault through the reveal window: the sensing range
  // collapses to its minimum, so the stopped vehicle is recognized far
  // too late -- the same failure mode as the real-world accident.
  sim::World world(scenario.world);
  ads::AdsPipeline pipeline(world, config);
  ads::ValueFault fault;
  fault.target = "perception.range";
  fault.value = 15.0;
  fault.start_time = 8.0;
  fault.hold_duration = 10.0;
  pipeline.arm_value_fault(fault);
  pipeline.run_for(scenario.duration);
  print_timeline("injected run (perception range fault 8s-18s):",
                 pipeline.scenes());

  const core::RunResult result = core::classify_run(
      golden.scenes, pipeline.scenes(), pipeline.any_module_hung());
  std::printf("\nclassified outcome: %s (%s)\n",
              core::outcome_name(result.outcome), result.detail.c_str());
  return 0;
}
