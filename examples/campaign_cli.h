// Shared campaign-construction CLI code for the fleet-capable tools:
// drivefi_campaign (run / worker / merge) and drivefi_campaignd (the
// coordinator daemon) must build the Experiment and FaultModel from the
// SAME flags, or a worker launched with subtly different options would be
// refused at hello (manifest hash mismatch) -- or worse, not exist to
// refuse. One flag table, one builder, no drift.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/selector.h"
#include "scenario/dsl.h"
#include "sim/scenario.h"

namespace campaign_cli {

/// Every flag that feeds the campaign manifest (and thus the fleet
/// compatibility hash), plus the cost-only knobs.
struct CampaignArgs {
  std::string model_name = "random-value";
  std::size_t runs = 60;
  std::uint64_t seed = 1234;
  unsigned bits = 1;
  std::size_t replays = 25;
  std::string load_bn, save_bn, scn_path;
  std::size_t scenarios_limit = 0;
  std::uint64_t pipeline_seed = 7;
  unsigned threads = 0;
  bool fork_replays = true;
  std::size_t checkpoint_stride = 4;
  bool replay_tree = true;
  std::size_t max_live_snapshots = 0;
};

inline const char* kCampaignFlagHelp =
    "  --model M            random-value | random-bitflip | bayesian\n"
    "                       (default: random-value)\n"
    "  --runs N             campaign size for the random models (default 60)\n"
    "  --seed S             campaign seed (default 1234)\n"
    "  --bits B             flipped bits per injection, random-bitflip only\n"
    "  --replays N          bayesian: replay the top N of F_crit (default 25)\n"
    "  --load-bn FILE       bayesian: reuse a fitted predictor (no refit)\n"
    "  --save-bn FILE       bayesian: persist the fitted predictor\n"
    "  --scn FILE           load the scenario corpus from a .scn suite\n"
    "  --scenarios K        truncate the corpus to its first K scenarios\n"
    "  --pipeline-seed S    sensor-noise seed (default 7)\n"
    "  --threads N          worker threads (0 = all hardware)\n"
    "  --fork / --no-fork   fork-from-golden replay (default: on)\n"
    "  --checkpoint-stride N  scenes between golden checkpoints (default 4)\n"
    "  --replay-tree / --no-replay-tree\n"
    "                       shared-prefix replay tree (default: on; cost-only,\n"
    "                       results identical either way)\n"
    "  --max-live-snapshots N  cap on in-memory trunk snapshots (0 = uncapped;\n"
    "                       over-budget tails fall back to golden checkpoints)\n";

/// Consumes one campaign flag; returns false when `arg` is not a campaign
/// flag (the caller handles its own). `next` yields the flag's value.
inline bool parse_campaign_flag(CampaignArgs& a, const std::string& arg,
                                const std::function<const char*()>& next) {
  if (arg == "--model") a.model_name = next();
  else if (arg == "--runs") a.runs = static_cast<std::size_t>(std::atoll(next()));
  else if (arg == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(next()));
  else if (arg == "--bits") a.bits = static_cast<unsigned>(std::atoi(next()));
  else if (arg == "--replays") a.replays = static_cast<std::size_t>(std::atoll(next()));
  else if (arg == "--load-bn") a.load_bn = next();
  else if (arg == "--save-bn") a.save_bn = next();
  else if (arg == "--scn") a.scn_path = next();
  else if (arg == "--scenarios") a.scenarios_limit = static_cast<std::size_t>(std::atoll(next()));
  else if (arg == "--pipeline-seed") a.pipeline_seed = static_cast<std::uint64_t>(std::atoll(next()));
  else if (arg == "--threads") a.threads = static_cast<unsigned>(std::atoi(next()));
  else if (arg == "--fork") a.fork_replays = true;
  else if (arg == "--no-fork") a.fork_replays = false;
  else if (arg == "--checkpoint-stride") a.checkpoint_stride = static_cast<std::size_t>(std::atoll(next()));
  else if (arg == "--replay-tree") a.replay_tree = true;
  else if (arg == "--no-replay-tree") a.replay_tree = false;
  else if (arg == "--max-live-snapshots") a.max_live_snapshots = static_cast<std::size_t>(std::atoll(next()));
  else return false;
  return true;
}

/// A fully constructed campaign: corpus, engine, fault model.
struct CampaignSetup {
  std::string scenario_spec;
  std::unique_ptr<drivefi::core::Experiment> experiment;
  std::unique_ptr<drivefi::core::FaultModel> model;
};

/// Builds the suite, the Experiment (golden precompute happens here), and
/// the fault model. Prints setup narration unless `quiet`. Exits with
/// status 2 on an unknown model name.
inline CampaignSetup build_campaign(const CampaignArgs& a, bool quiet) {
  using namespace drivefi;
  CampaignSetup setup;

  std::vector<sim::Scenario> suite = a.scn_path.empty()
                                         ? sim::base_suite()
                                         : scenario::load_suite(a.scn_path);
  setup.scenario_spec = a.scn_path.empty() ? "builtin:base" : a.scn_path;
  if (a.scenarios_limit > 0 && a.scenarios_limit < suite.size()) {
    suite.resize(a.scenarios_limit);
    setup.scenario_spec += ":";
    setup.scenario_spec += std::to_string(a.scenarios_limit);
  }

  ads::PipelineConfig config;
  config.seed = a.pipeline_seed;
  core::ExperimentOptions options;
  options.executor.threads = a.threads;
  options.fork_replays = a.fork_replays;
  options.checkpoint_stride = a.checkpoint_stride;
  options.replay_tree = a.replay_tree;
  options.max_live_snapshots = a.max_live_snapshots;

  if (!quiet)
    std::printf("running %zu golden scenarios (%s)...\n", suite.size(),
                setup.scenario_spec.c_str());
  setup.experiment =
      std::make_unique<core::Experiment>(suite, config, core::ClassifierConfig{},
                                         options);

  if (a.model_name == "random-value") {
    setup.model = std::make_unique<core::RandomValueModel>(a.runs, a.seed);
  } else if (a.model_name == "random-bitflip") {
    setup.model =
        std::make_unique<core::BitFlipModel>(a.runs, a.seed, a.bits);
  } else if (a.model_name == "bayesian") {
    core::BayesianCampaignConfig campaign;
    campaign.max_replays = a.replays;
    campaign.selection.executor.threads = a.threads;
    std::unique_ptr<core::BayesianFaultModel> bayes;
    if (!a.load_bn.empty()) {
      if (!quiet)
        std::printf("loading fitted predictor from %s (no refit)...\n",
                    a.load_bn.c_str());
      auto predictor = std::make_shared<const core::SafetyPredictor>(
          core::load_predictor(a.load_bn));
      bayes = std::make_unique<core::BayesianFaultModel>(*setup.experiment,
                                                         predictor, campaign);
    } else {
      if (!quiet)
        std::printf("fitting the %d-TBN on golden traces...\n",
                    campaign.predictor.slices);
      bayes =
          std::make_unique<core::BayesianFaultModel>(*setup.experiment, campaign);
    }
    if (!a.save_bn.empty()) {
      core::save_predictor(bayes->predictor(), a.save_bn);
      if (!quiet)
        std::printf("saved fitted predictor to %s\n", a.save_bn.c_str());
    }
    if (!quiet) {
      const core::SelectionResult& selection = bayes->selection();
      std::printf("Bayesian selection: %zu critical faults (%zu BN inferences, "
                  "replaying top %zu)\n",
                  selection.critical.size(), selection.inference_calls,
                  bayes->run_count());
    }
    setup.model = std::move(bayes);
  } else {
    std::fprintf(stderr, "error: unknown model %s\n", a.model_name.c_str());
    std::exit(2);
  }
  return setup;
}

/// Parses "host:port" (port required). Exits with status 2 on malformed
/// input.
inline void parse_host_port(const std::string& value, std::string* host,
                            std::uint16_t* port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon + 1 >= value.size()) {
    std::fprintf(stderr, "error: expected HOST:PORT, got %s\n", value.c_str());
    std::exit(2);
  }
  *host = value.substr(0, colon);
  *port = static_cast<std::uint16_t>(std::atoi(value.c_str() + colon + 1));
}

}  // namespace campaign_cli
