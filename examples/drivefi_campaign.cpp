// drivefi_campaign: the unified campaign CLI -- one entry point for
// running, sharding, resuming, and merging fault-injection campaigns,
// subsuming the per-example flag sprawl of mine_critical_faults and
// random_vs_bayesian.
//
//   drivefi_campaign run [options]
//     --model M            random-value | random-bitflip | bayesian
//                          (default: random-value)
//     --runs N             campaign size for the random models (default 60)
//     --seed S             campaign seed (default 1234)
//     --bits B             flipped bits per injection, random-bitflip only
//     --replays N          bayesian: replay the top N of F_crit (default 25)
//     --load-bn FILE       bayesian: reuse a fitted predictor (no refit)
//     --save-bn FILE       bayesian: persist the fitted predictor
//     --scn FILE           load the scenario corpus from a .scn suite
//     --scenarios K        truncate the corpus to its first K scenarios
//     --pipeline-seed S    sensor-noise seed (default 7)
//     --threads N          worker threads (0 = all hardware)
//     --fork / --no-fork   fork-from-golden replay (default: on)
//     --checkpoint-stride N  scenes between golden checkpoints (default 4)
//     --shard i/N          run only indices {r : r % N == i} (default 0/1)
//     --store FILE         shard store path (default campaign.shard<i>.jsonl)
//     --resume             continue a crashed/partial store instead of
//                          starting over (refuses a mismatched manifest)
//     --overwrite          explicitly discard an existing store; without it
//                          (or --resume) a store already holding records is
//                          refused, never silently clobbered
//
//   drivefi_campaign merge --jsonl OUT.jsonl SHARD.jsonl [SHARD.jsonl ...]
//     Validates the shard set (same campaign, no duplicates, complete
//     coverage), writes the canonical campaign JSONL -- byte-identical to
//     the single-process run -- and prints the outcome table.
//
// A complete sharded campaign across two machines is just:
//   machine A:  drivefi_campaign run --runs 100000 --shard 0/2 --store a.jsonl
//   machine B:  drivefi_campaign run --runs 100000 --shard 1/2 --store b.jsonl
//   anywhere:   drivefi_campaign merge --jsonl campaign.jsonl a.jsonl b.jsonl
// and a crash on either machine is recovered by re-running with --resume.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/manifest.h"
#include "core/report.h"
#include "core/result_store.h"
#include "core/selector.h"
#include "scenario/dsl.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run [options] | %s merge --jsonl OUT SHARD...\n"
               "(see the header of examples/drivefi_campaign.cpp or\n"
               " docs/FORMATS.md for the full option list)\n",
               argv0, argv0);
  std::exit(2);
}

int cmd_run(int argc, char** argv) {
  std::string model_name = "random-value";
  std::size_t runs = 60;
  std::uint64_t seed = 1234;
  unsigned bits = 1;
  std::size_t replays = 25;
  std::string load_bn, save_bn, scn_path, store_path;
  std::size_t scenarios_limit = 0;
  std::uint64_t pipeline_seed = 7;
  unsigned threads = 0;
  bool fork_replays = true;
  std::size_t checkpoint_stride = 4;
  std::size_t shard_index = 0, shard_count = 1;
  bool resume = false;
  bool overwrite = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") model_name = next();
    else if (arg == "--runs") runs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--bits") bits = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--replays") replays = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--load-bn") load_bn = next();
    else if (arg == "--save-bn") save_bn = next();
    else if (arg == "--scn") scn_path = next();
    else if (arg == "--scenarios") scenarios_limit = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--pipeline-seed") pipeline_seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--threads") threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--fork") fork_replays = true;
    else if (arg == "--no-fork") fork_replays = false;
    else if (arg == "--checkpoint-stride") checkpoint_stride = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--store") store_path = next();
    else if (arg == "--resume") resume = true;
    else if (arg == "--overwrite") overwrite = true;
    else if (arg == "--shard") {
      const std::string value = next();
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "error: --shard wants i/N, got %s\n", value.c_str());
        return 2;
      }
      shard_index = static_cast<std::size_t>(std::atoll(value.substr(0, slash).c_str()));
      shard_count = static_cast<std::size_t>(std::atoll(value.substr(slash + 1).c_str()));
      if (shard_count == 0 || shard_index >= shard_count) {
        std::fprintf(stderr, "error: --shard %zu/%zu is out of range\n",
                     shard_index, shard_count);
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (resume && overwrite) {
    std::fprintf(stderr, "error: --resume and --overwrite are exclusive\n");
    return 2;
  }
  if (store_path.empty())
    store_path = "campaign.shard" + std::to_string(shard_index) + ".jsonl";
  // Pre-flight the clobber refusal BEFORE the golden precompute (and, for
  // --model bayesian, the fit + selection): a forgotten --resume should
  // fail in milliseconds, not after minutes of wasted campaign setup. The
  // store constructor re-checks authoritatively either way.
  if (!resume && !overwrite) {
    const std::size_t records = core::stored_record_count(store_path);
    if (records > 0) {
      std::fprintf(stderr,
                   "error: refusing to overwrite %s: it already holds %zu run "
                   "record(s); resume it (--resume), discard it explicitly "
                   "(--overwrite), or delete the file\n",
                   store_path.c_str(), records);
      return 1;
    }
  }

  // -- scenario corpus ----------------------------------------------------
  std::vector<sim::Scenario> suite =
      scn_path.empty() ? sim::base_suite() : scenario::load_suite(scn_path);
  std::string scenario_spec = scn_path.empty() ? "builtin:base" : scn_path;
  if (scenarios_limit > 0 && scenarios_limit < suite.size()) {
    suite.resize(scenarios_limit);
    scenario_spec += ":" + std::to_string(scenarios_limit);
  }

  ads::PipelineConfig config;
  config.seed = pipeline_seed;
  core::ExperimentOptions options;
  options.executor.threads = threads;
  options.fork_replays = fork_replays;
  options.checkpoint_stride = checkpoint_stride;

  std::printf("running %zu golden scenarios (%s)...\n", suite.size(),
              scenario_spec.c_str());
  const core::Experiment experiment(suite, config, {}, options);

  // -- fault model --------------------------------------------------------
  std::unique_ptr<core::FaultModel> model;
  if (model_name == "random-value") {
    model = std::make_unique<core::RandomValueModel>(runs, seed);
  } else if (model_name == "random-bitflip") {
    model = std::make_unique<core::BitFlipModel>(runs, seed, bits);
  } else if (model_name == "bayesian") {
    core::BayesianCampaignConfig campaign;
    campaign.max_replays = replays;
    campaign.selection.executor.threads = threads;
    std::unique_ptr<core::BayesianFaultModel> bayes;
    if (!load_bn.empty()) {
      std::printf("loading fitted predictor from %s (no refit)...\n",
                  load_bn.c_str());
      auto predictor = std::make_shared<const core::SafetyPredictor>(
          core::load_predictor(load_bn));
      bayes = std::make_unique<core::BayesianFaultModel>(experiment, predictor,
                                                         campaign);
    } else {
      std::printf("fitting the %d-TBN on golden traces...\n",
                  campaign.predictor.slices);
      bayes = std::make_unique<core::BayesianFaultModel>(experiment, campaign);
    }
    if (!save_bn.empty()) {
      core::save_predictor(bayes->predictor(), save_bn);
      std::printf("saved fitted predictor to %s\n", save_bn.c_str());
    }
    const core::SelectionResult& selection = bayes->selection();
    std::printf("Bayesian selection: %zu critical faults (%zu BN inferences, "
                "replaying top %zu)\n",
                selection.critical.size(), selection.inference_calls,
                bayes->run_count());
    model = std::move(bayes);
  } else {
    std::fprintf(stderr, "error: unknown model %s\n", model_name.c_str());
    return 2;
  }

  // -- manifest + durable shard store ---------------------------------------
  core::CampaignManifest manifest =
      core::make_manifest(experiment, *model, scenario_spec);
  manifest.shard_index = shard_index;
  manifest.shard_count = shard_count;

  const core::StoreOpenMode mode = resume ? core::StoreOpenMode::kResume
                                 : overwrite ? core::StoreOpenMode::kOverwrite
                                             : core::StoreOpenMode::kFresh;
  core::ShardResultStore store(store_path, manifest, mode);
  const std::size_t already = store.completed().size();
  if (resume && already > 0)
    std::printf("resuming %s: %zu of this shard's runs already stored\n",
                store_path.c_str(), already);

  std::printf("shard %zu/%zu of %zu planned runs -> %s\n", shard_index,
              shard_count, manifest.planned_runs, store_path.c_str());
  const core::CampaignStats stats = experiment.run_shard(*model, store);
  core::outcome_table(stats).print("shard outcomes (this sitting)");
  std::printf("executed %zu runs in %.2f s; store now holds %zu records\n",
              stats.total(), stats.wall_seconds, store.completed().size());
  if (shard_count > 1)
    std::printf("merge when all shards are done:\n  drivefi_campaign merge "
                "--jsonl campaign.jsonl <shard files>\n");
  else
    std::printf("finalize: drivefi_campaign merge --jsonl campaign.jsonl %s\n",
                store_path.c_str());
  return 0;
}

int cmd_merge(int argc, char** argv) {
  std::string jsonl_path;
  std::vector<std::string> shard_paths;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jsonl") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jsonl needs a value\n");
        return 2;
      }
      jsonl_path = argv[++i];
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr, "error: merge needs at least one shard file\n");
    return 2;
  }

  const core::MergedCampaign merged = core::merge_shards(shard_paths);
  std::printf("merged %zu shard file(s): model %s (%s), %zu runs\n",
              shard_paths.size(), merged.manifest.model.c_str(),
              merged.manifest.model_params.c_str(),
              merged.manifest.planned_runs);
  core::outcome_table(merged.stats).print("campaign outcomes");

  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
      return 1;
    }
    core::write_merged_jsonl(merged, out);
    std::printf("wrote canonical campaign JSONL to %s\n", jsonl_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "run") return cmd_run(argc - 2, argv + 2);
    if (command == "merge") return cmd_merge(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(argv[0]);
}
