// drivefi_campaign: the unified campaign CLI -- one entry point for
// running, sharding, resuming, merging, and fleet-working fault-injection
// campaigns, subsuming the per-example flag sprawl of mine_critical_faults
// and random_vs_bayesian.
//
//   drivefi_campaign run [campaign options] [run options]
//     (campaign options: see campaign_cli.h / docs/FORMATS.md)
//     --shard i/N          run only indices {r : r % N == i} (default 0/1)
//     --store FILE         shard store path (default campaign.shard<i>.jsonl)
//     --resume             continue a crashed/partial store instead of
//                          starting over (refuses a mismatched manifest)
//     --overwrite          explicitly discard an existing store; without it
//                          (or --resume) a store already holding records is
//                          refused, never silently clobbered
//     --progress           live status line (runs/s, ETA) on stderr
//
//   drivefi_campaign worker --connect HOST:PORT [campaign options]
//     --store FILE         local scratch store (default <name>.local.jsonl)
//     --name NAME          worker display name (default worker-<pid>)
//     Joins a drivefi_campaignd fleet: the campaign options MUST match the
//     daemon's (the manifest hash in the hello is checked), the worker
//     pulls leases of run indices, executes them locally, and streams each
//     record back as it completes. Run as many workers as you have cores
//     or machines; kill any of them freely -- their leases are re-granted
//     and the merged campaign is byte-identical regardless.
//
//   drivefi_campaign merge --jsonl OUT.jsonl SHARD.jsonl [SHARD.jsonl ...]
//     Validates the shard set (same campaign, no duplicates, complete
//     coverage), writes the canonical campaign JSONL -- byte-identical to
//     the single-process run -- and prints the outcome table.
//
// A complete sharded campaign across two machines is just:
//   machine A:  drivefi_campaign run --runs 100000 --shard 0/2 --store a.jsonl
//   machine B:  drivefi_campaign run --runs 100000 --shard 1/2 --store b.jsonl
//   anywhere:   drivefi_campaign merge --jsonl campaign.jsonl a.jsonl b.jsonl
// and a crash on either machine is recovered by re-running with --resume.
// The fleet equivalent (dynamic load balancing, no up-front sharding):
//   anywhere:   drivefi_campaignd --runs 100000 --listen 0.0.0.0:7070
//   each box:   drivefi_campaign worker --connect coord:7070 --runs 100000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "campaign_cli.h"
#include "coord/worker.h"
#include "core/manifest.h"
#include "core/progress.h"
#include "core/report.h"
#include "core/result_store.h"

using namespace drivefi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run [options] | %s worker --connect HOST:PORT "
               "[options] | %s merge --jsonl OUT SHARD...\n"
               "(see the header of examples/drivefi_campaign.cpp or\n"
               " docs/FORMATS.md for the full option list)\n",
               argv0, argv0, argv0);
  std::exit(2);
}

int cmd_run(int argc, char** argv) {
  campaign_cli::CampaignArgs args;
  std::string store_path;
  std::size_t shard_index = 0, shard_count = 1;
  bool resume = false;
  bool overwrite = false;
  bool progress = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (campaign_cli::parse_campaign_flag(args, arg, next)) continue;
    if (arg == "--store") store_path = next();
    else if (arg == "--resume") resume = true;
    else if (arg == "--overwrite") overwrite = true;
    else if (arg == "--progress") progress = true;
    else if (arg == "--shard") {
      const std::string value = next();
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "error: --shard wants i/N, got %s\n", value.c_str());
        return 2;
      }
      shard_index = static_cast<std::size_t>(std::atoll(value.substr(0, slash).c_str()));
      shard_count = static_cast<std::size_t>(std::atoll(value.substr(slash + 1).c_str()));
      if (shard_count == 0 || shard_index >= shard_count) {
        std::fprintf(stderr, "error: --shard %zu/%zu is out of range\n",
                     shard_index, shard_count);
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (resume && overwrite) {
    std::fprintf(stderr, "error: --resume and --overwrite are exclusive\n");
    return 2;
  }
  if (store_path.empty())
    store_path = "campaign.shard" + std::to_string(shard_index) + ".jsonl";
  // Pre-flight the clobber refusal BEFORE the golden precompute (and, for
  // --model bayesian, the fit + selection): a forgotten --resume should
  // fail in milliseconds, not after minutes of wasted campaign setup. The
  // store constructor re-checks authoritatively either way.
  if (!resume && !overwrite) {
    const std::size_t records = core::stored_record_count(store_path);
    if (records > 0) {
      std::fprintf(stderr,
                   "error: refusing to overwrite %s: it already holds %zu run "
                   "record(s); resume it (--resume), discard it explicitly "
                   "(--overwrite), or delete the file\n",
                   store_path.c_str(), records);
      return 1;
    }
  }

  campaign_cli::CampaignSetup setup = campaign_cli::build_campaign(args, false);

  // -- manifest + durable shard store ---------------------------------------
  core::CampaignManifest manifest = core::make_manifest(
      *setup.experiment, *setup.model, setup.scenario_spec);
  manifest.shard_index = shard_index;
  manifest.shard_count = shard_count;

  const core::StoreOpenMode mode = resume ? core::StoreOpenMode::kResume
                                 : overwrite ? core::StoreOpenMode::kOverwrite
                                             : core::StoreOpenMode::kFresh;
  core::ShardResultStore store(store_path, manifest, mode);
  const std::size_t already = store.completed().size();
  if (resume && already > 0)
    std::printf("resuming %s: %zu of this shard's runs already stored\n",
                store_path.c_str(), already);

  std::printf("shard %zu/%zu of %zu planned runs -> %s\n", shard_index,
              shard_count, manifest.planned_runs, store_path.c_str());
  core::ProgressSink progress_sink(std::cerr);
  std::vector<core::ResultSink*> sinks;
  if (progress) sinks.push_back(&progress_sink);
  const core::CampaignStats stats =
      setup.experiment->run_shard(*setup.model, store, sinks);
  core::outcome_table(stats).print("shard outcomes (this sitting)");
  std::printf("executed %zu runs in %.2f s; store now holds %zu records\n",
              stats.total(), stats.wall_seconds, store.completed().size());
  if (shard_count > 1)
    std::printf("merge when all shards are done:\n  drivefi_campaign merge "
                "--jsonl campaign.jsonl <shard files>\n");
  else
    std::printf("finalize: drivefi_campaign merge --jsonl campaign.jsonl %s\n",
                store_path.c_str());
  return 0;
}

int cmd_worker(int argc, char** argv) {
  campaign_cli::CampaignArgs args;
  coord::WorkerConfig config;
  bool have_connect = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (campaign_cli::parse_campaign_flag(args, arg, next)) continue;
    if (arg == "--connect") {
      campaign_cli::parse_host_port(next(), &config.host, &config.port);
      have_connect = true;
    } else if (arg == "--store") config.store_path = next();
    else if (arg == "--name") config.name = next();
    else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (!have_connect) {
    std::fprintf(stderr, "error: worker needs --connect HOST:PORT\n");
    return 2;
  }
  config.threads = args.threads;

  campaign_cli::CampaignSetup setup = campaign_cli::build_campaign(args, false);
  coord::WorkerClient worker(*setup.experiment, *setup.model,
                             setup.scenario_spec, config);
  std::printf("worker %s: local store %s, connecting to %s:%u\n",
              worker.config().name.c_str(), worker.config().store_path.c_str(),
              worker.config().host.c_str(), worker.config().port);
  const coord::WorkerStats stats = worker.run();
  std::printf("worker done: %zu runs executed, %zu leases completed, %zu "
              "revoked, %.2f s\n",
              stats.runs_executed, stats.leases_completed,
              stats.leases_revoked, stats.wall_seconds);
  return 0;
}

int cmd_merge(int argc, char** argv) {
  std::string jsonl_path;
  std::vector<std::string> shard_paths;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jsonl") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jsonl needs a value\n");
        return 2;
      }
      jsonl_path = argv[++i];
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr, "error: merge needs at least one shard file\n");
    return 2;
  }

  const core::MergedCampaign merged = core::merge_shards(shard_paths);
  std::printf("merged %zu shard file(s): model %s (%s), %zu runs\n",
              shard_paths.size(), merged.manifest.model.c_str(),
              merged.manifest.model_params.c_str(),
              merged.manifest.planned_runs);
  core::outcome_table(merged.stats).print("campaign outcomes");

  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
      return 1;
    }
    core::write_merged_jsonl(merged, out);
    std::printf("wrote canonical campaign JSONL to %s\n", jsonl_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "run") return cmd_run(argc - 2, argv + 2);
    if (command == "worker") return cmd_worker(argc - 2, argv + 2);
    if (command == "merge") return cmd_merge(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(argv[0]);
}
