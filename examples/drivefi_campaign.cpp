// drivefi_campaign: the unified campaign CLI -- one entry point for
// running, sharding, resuming, merging, and fleet-working fault-injection
// campaigns, subsuming the per-example flag sprawl of mine_critical_faults
// and random_vs_bayesian.
//
//   drivefi_campaign run [campaign options] [run options]
//     (campaign options: see campaign_cli.h / docs/FORMATS.md)
//     --shard i/N          run only indices {r : r % N == i} (default 0/1)
//     --store FILE         shard store path (default campaign.shard<i>.jsonl,
//                          or .bin with --store-format binary)
//     --store-format F     durable store container: jsonl (default) or
//                          binary (compact indexed frames; see
//                          docs/FORMATS.md "Binary record store"). Format
//                          is provenance, not compatibility: shards of
//                          either format merge bit-identically.
//     --resume             continue a crashed/partial store instead of
//                          starting over (refuses a mismatched manifest)
//     --overwrite          explicitly discard an existing store; without it
//                          (or --resume) a store already holding records is
//                          refused, never silently clobbered
//     --progress           live status line (runs/s, ETA) on stderr
//     --metrics-out FILE   periodic metrics snapshots (JSONL) while running
//     --metrics-interval S snapshot cadence in seconds (default 1)
//     --trace-out FILE     Chrome trace-event JSON (chrome://tracing,
//                          Perfetto) of the campaign's timing spans
//     Observability is inert: the canonical records, fingerprint, and
//     manifest are byte-identical with or without these flags
//     (tests/determinism_test.cpp enforces it). A final {"type":"telemetry"}
//     summary line is printed on stderr either way.
//
//   drivefi_campaign worker --connect HOST:PORT [campaign options]
//     --store FILE         local scratch store (default <name>.local.jsonl)
//     --store-format F     local scratch store container, jsonl | binary
//     --name NAME          worker display name (default worker-<pid>)
//     --reconnect-max-attempts N  consecutive failed (re)connects before
//                          the worker gives up (default 20)
//     --reconnect-base-delay S    first backoff delay; doubles per failure
//                          up to --reconnect-max-delay (defaults 0.1 / 2)
//     Joins a drivefi_campaignd fleet: the campaign options MUST match the
//     daemon's (the manifest hash in the hello is checked), the worker
//     pulls leases of run indices, executes them locally, and streams each
//     record back as it completes. Run as many workers as you have cores
//     or machines; kill any of them freely -- their leases are re-granted
//     and the merged campaign is byte-identical regardless. Transport loss
//     (including a coordinator kill -9) is transient: the worker spools to
//     its local store, reconnects with capped exponential backoff + seeded
//     jitter, and respools its records on re-hello (duplicates are no-ops
//     by determinism). Only an explicit protocol refusal is fatal.
//
//   drivefi_campaign merge --jsonl OUT.jsonl SHARD... [--store OUT --store-format F]
//     Validates the shard set (same campaign, no duplicates, complete
//     coverage), writes the canonical campaign JSONL -- byte-identical to
//     the single-process run -- and prints the outcome table. Shards may
//     be jsonl, binary, or a mixture (each file's own magic bytes decide);
//     --store re-exports the merged campaign as a single 0/1-shard store
//     in --store-format (e.g. to compact a JSONL shard set into one
//     indexed binary store for drivefi_query).
//
//   drivefi_campaign status --connect HOST:PORT [--json]
//     Asks a running drivefi_campaignd for its status (no campaign options
//     needed -- the probe is read-only) and renders campaign totals plus a
//     per-worker fleet table. --json prints the raw status_reply line
//     instead (docs/FORMATS.md "Status wire message").
//
// A complete sharded campaign across two machines is just:
//   machine A:  drivefi_campaign run --runs 100000 --shard 0/2 --store a.jsonl
//   machine B:  drivefi_campaign run --runs 100000 --shard 1/2 --store b.jsonl
//   anywhere:   drivefi_campaign merge --jsonl campaign.jsonl a.jsonl b.jsonl
// and a crash on either machine is recovered by re-running with --resume.
// The fleet equivalent (dynamic load balancing, no up-front sharding):
//   anywhere:   drivefi_campaignd --runs 100000 --listen 0.0.0.0:7070
//   each box:   drivefi_campaign worker --connect coord:7070 --runs 100000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign_cli.h"
#include "coord/protocol.h"
#include "coord/worker.h"
#include "core/jsonl.h"
#include "core/manifest.h"
#include "core/progress.h"
#include "core/report.h"
#include "core/result_store.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/span.h"

using namespace drivefi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run [options] | %s worker --connect HOST:PORT "
               "[options] | %s merge --jsonl OUT SHARD... | %s status "
               "--connect HOST:PORT [--json]\n"
               "(see the header of examples/drivefi_campaign.cpp or\n"
               " docs/FORMATS.md for the full option list)\n",
               argv0, argv0, argv0, argv0);
  std::exit(2);
}

int cmd_run(int argc, char** argv) {
  campaign_cli::CampaignArgs args;
  std::string store_path;
  core::StoreFormat store_format = core::StoreFormat::kJsonl;
  std::string metrics_out, trace_out;
  double metrics_interval = 1.0;
  std::size_t shard_index = 0, shard_count = 1;
  bool resume = false;
  bool overwrite = false;
  bool progress = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (campaign_cli::parse_campaign_flag(args, arg, next)) continue;
    if (arg == "--store") store_path = next();
    else if (arg == "--store-format")
      store_format = core::parse_store_format(next());
    else if (arg == "--resume") resume = true;
    else if (arg == "--overwrite") overwrite = true;
    else if (arg == "--progress") progress = true;
    else if (arg == "--metrics-out") metrics_out = next();
    else if (arg == "--metrics-interval") metrics_interval = std::atof(next());
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--shard") {
      const std::string value = next();
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "error: --shard wants i/N, got %s\n", value.c_str());
        return 2;
      }
      shard_index = static_cast<std::size_t>(std::atoll(value.substr(0, slash).c_str()));
      shard_count = static_cast<std::size_t>(std::atoll(value.substr(slash + 1).c_str()));
      if (shard_count == 0 || shard_index >= shard_count) {
        std::fprintf(stderr, "error: --shard %zu/%zu is out of range\n",
                     shard_index, shard_count);
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (resume && overwrite) {
    std::fprintf(stderr, "error: --resume and --overwrite are exclusive\n");
    return 2;
  }
  if (store_path.empty())
    store_path =
        "campaign.shard" + std::to_string(shard_index) +
        (store_format == core::StoreFormat::kBinary ? ".bin" : ".jsonl");
  // Pre-flight the clobber refusal BEFORE the golden precompute (and, for
  // --model bayesian, the fit + selection): a forgotten --resume should
  // fail in milliseconds, not after minutes of wasted campaign setup. The
  // store constructor re-checks authoritatively either way.
  if (!resume && !overwrite) {
    const std::size_t records = core::stored_record_count(store_path);
    if (records > 0) {
      std::fprintf(stderr,
                   "error: refusing to overwrite %s: it already holds %zu run "
                   "record(s); resume it (--resume), discard it explicitly "
                   "(--overwrite), or delete the file\n",
                   store_path.c_str(), records);
      return 1;
    }
  }

  // Tracing spans the whole campaign, golden precompute included -- that is
  // where most of the interesting wall time lives on short campaigns.
  if (!trace_out.empty()) obs::start_tracing(trace_out);

  campaign_cli::CampaignSetup setup = campaign_cli::build_campaign(args, false);

  // -- manifest + durable shard store ---------------------------------------
  core::CampaignManifest manifest = core::make_manifest(
      *setup.experiment, *setup.model, setup.scenario_spec);
  manifest.shard_index = shard_index;
  manifest.shard_count = shard_count;

  const core::StoreOpenMode mode = resume ? core::StoreOpenMode::kResume
                                 : overwrite ? core::StoreOpenMode::kOverwrite
                                             : core::StoreOpenMode::kFresh;
  // A resume follows the format the store was actually written in -- the
  // file's own magic bytes outrank the flag, so a forgotten --store-format
  // can never strand durable records behind a format error.
  if (resume) store_format = core::detect_store_format(store_path, store_format);
  const std::unique_ptr<core::ShardStore> store_ptr =
      core::open_shard_store(store_path, manifest, store_format, mode);
  core::ShardStore& store = *store_ptr;
  const std::size_t already = store.completed().size();
  if (resume && already > 0)
    std::printf("resuming %s: %zu of this shard's runs already stored\n",
                store_path.c_str(), already);

  std::printf("shard %zu/%zu of %zu planned runs -> %s (%s)\n", shard_index,
              shard_count, manifest.planned_runs, store_path.c_str(),
              core::store_format_name(store_format));
  core::ProgressSink progress_sink(std::cerr);
  std::vector<core::ResultSink*> sinks;
  if (progress) sinks.push_back(&progress_sink);
  std::ofstream metrics_stream;
  std::unique_ptr<core::MetricsSnapshotSink> metrics_sink;
  if (!metrics_out.empty()) {
    metrics_stream.open(metrics_out, std::ios::binary | std::ios::trunc);
    if (!metrics_stream) {
      std::fprintf(stderr, "error: cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    metrics_sink = std::make_unique<core::MetricsSnapshotSink>(
        metrics_stream, metrics_interval);
    sinks.push_back(metrics_sink.get());
  }
  const core::CampaignStats stats =
      setup.experiment->run_shard(*setup.model, store, sinks);
  if (!trace_out.empty()) obs::stop_tracing();
  std::fprintf(stderr, "%s\n",
               obs::telemetry_jsonl(stats.wall_seconds).c_str());
  core::outcome_table(stats).print("shard outcomes (this sitting)");
  std::printf("executed %zu runs in %.2f s; store now holds %zu records\n",
              stats.total(), stats.wall_seconds, store.completed().size());
  if (shard_count > 1)
    std::printf("merge when all shards are done:\n  drivefi_campaign merge "
                "--jsonl campaign.jsonl <shard files>\n");
  else
    std::printf("finalize: drivefi_campaign merge --jsonl campaign.jsonl %s\n",
                store_path.c_str());
  return 0;
}

int cmd_worker(int argc, char** argv) {
  campaign_cli::CampaignArgs args;
  coord::WorkerConfig config;
  bool have_connect = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (campaign_cli::parse_campaign_flag(args, arg, next)) continue;
    if (arg == "--connect") {
      campaign_cli::parse_host_port(next(), &config.host, &config.port);
      have_connect = true;
    } else if (arg == "--store") config.store_path = next();
    else if (arg == "--store-format")
      config.store_format = core::parse_store_format(next());
    else if (arg == "--name") config.name = next();
    else if (arg == "--reconnect-max-attempts")
      config.reconnect_max_attempts =
          static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--reconnect-base-delay")
      config.reconnect_base_delay = std::atof(next());
    else if (arg == "--reconnect-max-delay")
      config.reconnect_max_delay = std::atof(next());
    else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (!have_connect) {
    std::fprintf(stderr, "error: worker needs --connect HOST:PORT\n");
    return 2;
  }
  config.threads = args.threads;

  campaign_cli::CampaignSetup setup = campaign_cli::build_campaign(args, false);
  coord::WorkerClient worker(*setup.experiment, *setup.model,
                             setup.scenario_spec, config);
  std::printf("worker %s: local store %s, connecting to %s:%u\n",
              worker.config().name.c_str(), worker.config().store_path.c_str(),
              worker.config().host.c_str(), worker.config().port);
  const coord::WorkerStats stats = worker.run();
  std::fprintf(stderr, "%s\n",
               obs::telemetry_jsonl(stats.wall_seconds).c_str());
  std::printf("worker done: %zu runs executed, %zu leases completed, %zu "
              "revoked, %zu reconnects, %zu records respooled, %.2f s%s\n",
              stats.runs_executed, stats.leases_completed,
              stats.leases_revoked, stats.reconnects, stats.records_respooled,
              stats.wall_seconds,
              stats.gave_up ? " (gave up reconnecting)" : "");
  return stats.gave_up ? 1 : 0;
}

int cmd_status(int argc, char** argv) {
  std::string host;
  std::uint16_t port = 0;
  bool have_connect = false;
  bool raw_json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --connect needs a value\n");
        return 2;
      }
      campaign_cli::parse_host_port(argv[++i], &host, &port);
      have_connect = true;
    } else if (arg == "--json") {
      raw_json = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (!have_connect) {
    std::fprintf(stderr, "error: status needs --connect HOST:PORT\n");
    return 2;
  }

  net::MessageConnection conn(net::TcpSocket::connect(host, port, 5.0));
  conn.send_line(encode(coord::StatusRequestMsg{}));
  std::string line;
  if (conn.recv_line(&line, 5.0) != net::RecvStatus::kMessage) {
    std::fprintf(stderr, "error: no status reply from %s:%u\n", host.c_str(),
                 port);
    return 1;
  }
  if (coord::message_type(line) == "error") {
    std::fprintf(stderr, "error: coordinator: %s\n",
                 coord::parse_error(line).message.c_str());
    return 1;
  }
  if (raw_json) {
    std::printf("%s\n", line.c_str());
    return 0;
  }

  const coord::StatusReplyMsg reply = coord::parse_status_reply(line);
  const double percent =
      reply.planned_runs > 0
          ? 100.0 * static_cast<double>(reply.completed_runs) /
                static_cast<double>(reply.planned_runs)
          : 0.0;
  std::printf("campaign: %zu/%zu runs stored (%.1f%%), %zu worker(s), "
              "coordinator up %.1f s\n",
              reply.completed_runs, reply.planned_runs, percent,
              reply.workers, reply.elapsed_seconds);
  if (!reply.worker_table.empty()) {
    std::printf("%-20s %7s %7s %11s %9s %9s\n", "worker", "threads", "leases",
                "leased runs", "reported", "hb age");
    std::istringstream table(reply.worker_table);
    std::string row;
    while (std::getline(table, row)) {
      const core::JsonLine json(row);
      const double hb_age = json.get_double("heartbeat_age_seconds");
      char hb_text[32];
      if (hb_age < 0.0)
        std::snprintf(hb_text, sizeof(hb_text), "--");
      else
        std::snprintf(hb_text, sizeof(hb_text), "%.1f s", hb_age);
      std::printf("%-20s %7llu %7llu %11llu %9llu %9s\n",
                  json.get_string("worker").c_str(),
                  static_cast<unsigned long long>(json.get_u64("threads")),
                  static_cast<unsigned long long>(
                      json.get_u64("active_leases")),
                  static_cast<unsigned long long>(json.get_u64("leased_runs")),
                  static_cast<unsigned long long>(
                      json.get_u64("reported_done")),
                  hb_text);
    }
  }
  return 0;
}

int cmd_merge(int argc, char** argv) {
  std::string jsonl_path;
  std::string store_path;
  core::StoreFormat store_format = core::StoreFormat::kJsonl;
  std::vector<std::string> shard_paths;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jsonl") jsonl_path = next();
    else if (arg == "--store") store_path = next();
    else if (arg == "--store-format")
      store_format = core::parse_store_format(next());
    else shard_paths.push_back(arg);
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr, "error: merge needs at least one shard file\n");
    return 2;
  }

  const core::MergedCampaign merged = core::merge_shards(shard_paths);
  std::printf("merged %zu shard file(s): model %s (%s), %zu runs\n",
              shard_paths.size(), merged.manifest.model.c_str(),
              merged.manifest.model_params.c_str(),
              merged.manifest.planned_runs);
  core::outcome_table(merged.stats).print("campaign outcomes");

  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
      return 1;
    }
    core::write_merged_jsonl(merged, out);
    std::printf("wrote canonical campaign JSONL to %s\n", jsonl_path.c_str());
  }
  if (!store_path.empty()) {
    // Re-export the merged campaign as one 0/1-shard store (any format):
    // the compaction path from a JSONL shard set to an indexed binary
    // store, and vice versa.
    const std::unique_ptr<core::ShardStore> store = core::open_shard_store(
        store_path, merged.manifest, store_format,
        core::StoreOpenMode::kOverwrite);
    for (const core::InjectionRecord& record : merged.stats.records)
      store->append(record);
    std::printf("wrote merged %s store to %s\n",
                core::store_format_name(store_format), store_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "run") return cmd_run(argc - 2, argv + 2);
    if (command == "worker") return cmd_worker(argc - 2, argv + 2);
    if (command == "merge") return cmd_merge(argc - 2, argv + 2);
    if (command == "status") return cmd_status(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  usage(argv[0]);
}
