// Situation mining: turn a Bayesian fault-selection run into the "library
// of situations" the paper's discussion proposes for AV testing rules.
//
//   ./situation_mining
//
// Pipeline: golden traces -> fit the 3-TBN -> select critical faults ->
// cluster the scenes they strike into named situations -> rank the ADS
// variables whose corruption is most dangerous.
#include <cstdio>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/importance.h"
#include "core/scene_library.h"
#include "core/selector.h"
#include "sim/scenario.h"

using namespace drivefi;

int main() {
  // A compact but diverse suite: braking lead, cut-in, and the paper's
  // Example 1 lane-change scenario.
  std::vector<sim::Scenario> suite = {sim::base_suite()[2],
                                      sim::base_suite()[3],
                                      sim::example1_lead_lane_change()};
  ads::PipelineConfig config;
  config.seed = 7;

  const core::Experiment experiment(suite, config);
  const auto& goldens = experiment.goldens();

  const core::SafetyPredictor predictor(goldens);
  const core::BayesianFaultSelector selector(predictor);
  const auto catalog =
      core::build_catalog(suite, core::default_target_ranges(), 7.5);
  const auto selection = selector.select(catalog, goldens);
  std::printf("catalog: %zu candidates, selected %zu critical faults\n",
              catalog.size(), selection.critical.size());

  // Cluster the struck scenes into situations.
  const auto features = core::extract_features(selection.critical, goldens);
  core::SceneLibraryConfig lib_config;
  lib_config.clusters = 3;
  const core::SceneLibrary library(features, lib_config);
  library.to_table().print("mined situation library");

  // Which variables are most dangerous to corrupt (by prediction)?
  const auto report = core::rank_targets(selection.critical);
  report.to_table().print("per-variable criticality (selection only)");

  std::printf("\nEach situation row is a testing rule candidate: e.g. a "
              "'close-follow' cluster says faults in its listed variables "
              "must be survivable at those speeds and gaps.\n");
  return 0;
}
