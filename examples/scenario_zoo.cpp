// Scenario zoo: the full scenario-subsystem loop in one example.
//
//   ./scenario_zoo [seed] [count]
//
// 1. draw `count` scenarios with the coverage-guided sampler (seeded, so
//    the same invocation always produces the same zoo),
// 2. save them to scenario_zoo.scn, reload, and verify the DSL round-trip,
// 3. run the reloaded suite through the Experiment engine (a small random
//    value-corruption campaign) -- sampler-produced suites are ordinary
//    sim::Scenario vectors, so the engine needs no special handling,
// 4. print the kinematic coverage table and its JSONL record.
//
//   ./scenario_zoo --export-builtin <dir>
//
// regenerates the checked-in DSL equivalents of the built-in suites
// (<dir>/base_suite.scn and <dir>/parametric_7200.scn); run it after
// editing sim/scenario.cpp so the committed files stay in sync.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "scenario/coverage.h"
#include "scenario/dsl.h"
#include "scenario/generators.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

namespace {

int export_builtin(const std::string& dir) {
  const std::string base_path = dir + "/base_suite.scn";
  scenario::save_suite(base_path, sim::base_suite());
  std::printf("wrote %s\n", base_path.c_str());
  const std::string parametric_path = dir + "/parametric_7200.scn";
  scenario::save_suite(parametric_path, sim::parametric_suite(7200, 7.5));
  std::printf("wrote %s\n", parametric_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--export-builtin")
    return export_builtin(argv[2]);

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const long long requested = argc > 2 ? std::atoll(argv[2]) : 8;
  if (requested <= 0) {
    std::fprintf(stderr, "usage: %s [seed] [count > 0]\n", argv[0]);
    return 2;
  }
  const auto count = static_cast<std::size_t>(requested);

  // 1. Coverage-guided sampling: each slot keeps the candidate landing in
  //    the emptiest cell of the kinematic grid.
  const scenario::ScenarioSampler sampler(seed);
  scenario::ScenarioCoverage coverage;
  const std::vector<sim::Scenario> suite =
      sampler.sample_covering(count, coverage);
  std::printf("sampled %zu scenarios (seed %llu):\n", suite.size(),
              static_cast<unsigned long long>(seed));
  for (const auto& s : suite)
    std::printf("  %-28s %4.0f s, %zu vehicle(s)\n", s.name.c_str(),
                s.duration, s.world.vehicles.size());

  // 2. Scenarios are data: save, reload, verify.
  const std::string path = "scenario_zoo.scn";
  scenario::save_suite(path, suite);
  const std::vector<sim::Scenario> reloaded = scenario::load_suite(path);
  if (reloaded != suite) {
    std::fprintf(stderr, "FATAL: %s did not round-trip\n", path.c_str());
    return 1;
  }
  std::printf("saved + reloaded %s (round-trip verified)\n", path.c_str());

  // 3. The reloaded suite drives a campaign exactly like a built-in one.
  ads::PipelineConfig config;
  config.seed = seed;
  const core::Experiment experiment(reloaded, config);
  const core::CampaignStats stats =
      experiment.run(core::RandomValueModel(3 * count, seed));
  std::printf("campaign over the zoo: %zu injections -> masked %zu, "
              "sdc-benign %zu, hang %zu, hazard %zu\n",
              stats.total(), stats.masked, stats.sdc_benign, stats.hang,
              stats.hazard);

  // 4. What part of the kinematic envelope does the zoo exercise?
  coverage.to_table().print("scenario coverage (marginals)");
  std::printf("%s\n", coverage.jsonl_record().c_str());
  return 0;
}
