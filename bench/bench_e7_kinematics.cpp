// E7 -- Stopping-distance engine (paper §III-A, Fig. 5, eq. (7)): the
// numerical procedure P vs the closed form on straight-line motion, the
// d_stop sweep over initial speed and steering angle, and RK4 integration
// throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "kinematics/stopping.h"
#include "util/table.h"

using namespace drivefi;

namespace {

void report_tables() {
  // Accuracy vs closed form.
  util::Table accuracy({"v0 (m/s)", "P(.) dstop (m)", "v0^2/2a (m)",
                        "rel err"});
  for (double v0 : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 33.5, 40.0}) {
    const auto d = kinematics::stopping_distance(6.0, v0, 0.0, 0.0, 2.8);
    const double closed = kinematics::stopping_distance_straight(6.0, v0);
    accuracy.add_row({util::Table::fmt(v0, 1),
                      util::Table::fmt(d.longitudinal, 4),
                      util::Table::fmt(closed, 4),
                      util::Table::fmt(std::abs(d.longitudinal - closed) /
                                           closed,
                                       9)});
  }
  accuracy.print("E7: numerical P(.) vs closed form (straight line)");

  // d_stop as a function of steering angle at highway speed: the lateral
  // component that drives lateral delta.
  util::Table sweep({"phi0 (rad)", "dstop_lon (m)", "lat, lane-hold (m)",
                     "lat, paper-frozen (m)", "stop time (s)"});
  for (double phi : {0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3}) {
    const auto held = kinematics::stopping_distance(6.0, 33.5, 0.0, phi, 2.8);
    // Paper-pure variant: dphi/dt = 0 for the whole stop (eq. (5)).
    const auto frozen =
        kinematics::stopping_distance(6.0, 33.5, 0.0, phi, 2.8, 5e-3, 0.0);
    sweep.add_row({util::Table::fmt(phi, 2),
                   util::Table::fmt(held.longitudinal, 1),
                   util::Table::fmt(held.lateral, 2),
                   util::Table::fmt(frozen.lateral, 1),
                   util::Table::fmt(held.stop_time, 2)});
  }
  sweep.print("E7: emergency-stop lateral displacement, lane-hold stop vs "
              "the paper's frozen steering (33.5 m/s, amax = 6)");
}

void bm_stopping_distance(benchmark::State& state) {
  const double v0 = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto d = kinematics::stopping_distance(6.0, v0, 0.0, 0.05, 2.8);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(bm_stopping_distance)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

void bm_stopping_distance_coarse(benchmark::State& state) {
  // The dt used online by the pipeline's safety evaluation.
  for (auto _ : state) {
    auto d = kinematics::stopping_distance(6.0, 33.5, 0.0, 0.05, 2.8, 1e-2);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(bm_stopping_distance_coarse);

void bm_bicycle_step(benchmark::State& state) {
  kinematics::VehicleState s;
  s.v = 30.0;
  kinematics::VehicleParams params;
  kinematics::Actuation act;
  act.throttle = 0.3;
  act.steering = 0.02;
  for (auto _ : state) {
    s = kinematics::step(s, act, params, 1.0 / 120.0);
    benchmark::DoNotOptimize(s);
    if (s.x > 1e9) s.x = 0.0;
  }
}
BENCHMARK(bm_bicycle_step);

}  // namespace

int main(int argc, char** argv) {
  report_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
