// E5 -- Case study 2 (paper Fig. 4, Example 2: the Tesla Autopilot
// crash): the lead vehicle changes lanes late, revealing a near-stopped
// vehicle. Fault-free, the ADS brakes in time; with a perception-delay
// fault through the reveal window, it collides. We sweep the fault's
// duration and report the crash boundary.
#include <cstdio>

#include "core/experiment.h"
#include "core/report.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

int main() {
  std::printf("E5: perception-delay sweep on the Tesla-reveal scenario\n");

  const sim::Scenario scenario = sim::example2_tesla_reveal();
  std::vector<sim::Scenario> suite{scenario};
  ads::PipelineConfig config;
  config.seed = 43;
  const core::Experiment experiment(suite, config);
  const auto& golden = experiment.goldens()[0];

  std::printf("golden run: %s\n",
              golden.scenes.back().collided ? "COLLIDED (unexpected!)"
                                            : "no collision");

  util::Table table({"fault hold (s)", "outcome", "min delta_lon (m)",
                     "collided"});
  for (double hold : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    sim::World world(scenario.world);
    ads::AdsPipeline pipeline(world, config);
    if (hold > 0.0) {
      ads::ValueFault fault;
      fault.target = "perception.range";
      fault.value = 15.0;  // minimum sensing range
      fault.start_time = 8.0;  // just before the reveal
      fault.hold_duration = hold;
      pipeline.arm_value_fault(fault);
    }
    pipeline.run_for(scenario.duration);
    const core::RunResult result = core::classify_run(
        golden.scenes, pipeline.scenes(), pipeline.any_module_hung());
    table.add_row({util::Table::fmt(hold, 1),
                   core::outcome_name(result.outcome),
                   util::Table::fmt(result.min_delta_lon, 1),
                   result.collided ? "yes" : "no"});
  }
  table.print("E5: outcome vs perception-fault duration "
              "(paper: delayed recognition recreates the fatal crash)");
  return 0;
}
