// Fork-from-golden replay bench: measures the campaign-level wall-clock
// speedup of forked replays (checkpoint restore + golden-tail splicing)
// against full-prefix simulation on the E3 random campaign, verifies the
// two are bit-identical, and sweeps early/mid/late injection times to show
// where the savings come from. Emits BENCH_replay_fork.json and exits
// nonzero below the speedup floor or on any forked/full divergence, so CI
// can gate on it.
//
//   ./bench_replay_fork [n_value_runs] [out.json] [speedup_floor]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

// Value faults pinned to one fraction of each scenario's duration, cycling
// over targets: isolates how the fork point (early/mid/late injection)
// drives the savings.
class PinnedTimeModel : public core::FaultModel {
 public:
  PinnedTimeModel(std::size_t n, double fraction, const core::Experiment& e)
      : n_(n), fraction_(fraction),
        targets_(core::default_target_ranges()),
        scenario_count_(e.scenarios().size()) {}

  std::string name() const override { return "pinned-time"; }
  std::size_t run_count() const override { return n_; }
  core::RunSpec spec(std::size_t i,
                     const core::Experiment& e) const override {
    core::RunSpec spec;
    spec.kind = core::RunSpec::Kind::kValue;
    spec.run_index = i;
    spec.hold_seconds = e.transient_hold_seconds();
    core::CandidateFault& fault = spec.fault;
    fault.scenario_index = i % scenario_count_;
    const auto& target = targets_[(i / scenario_count_) % targets_.size()];
    fault.target = target.name;
    fault.extreme = i % 2 ? core::Extreme::kMin : core::Extreme::kMax;
    fault.value =
        fault.extreme == core::Extreme::kMin ? target.min_value : target.max_value;
    const double duration = e.scenarios()[fault.scenario_index].duration;
    fault.inject_time = fraction_ * duration;
    fault.scene_index = static_cast<std::size_t>(
        fault.inject_time * e.pipeline_config().scene_hz);
    return spec;
  }

 private:
  std::size_t n_;
  double fraction_;
  std::vector<core::TargetRange> targets_;
  std::size_t scenario_count_;
};

struct Measurement {
  double full_seconds = 0.0;
  double forked_seconds = 0.0;
  bool identical = false;
  std::size_t runs = 0;
  std::size_t spliced = 0;
  double speedup() const {
    return forked_seconds > 0.0 ? full_seconds / forked_seconds : 0.0;
  }
};

Measurement measure(const core::Experiment& full, const core::Experiment& forked,
                    const core::FaultModel& model) {
  Measurement m;
  m.runs = model.run_count();
  const std::size_t spliced_before = forked.spliced_runs_executed();
  const core::CampaignStats a = full.run(model);
  const core::CampaignStats b = forked.run(model);
  m.full_seconds = a.wall_seconds;
  m.forked_seconds = b.wall_seconds;
  // Bit-exact divergence gate: campaign_fingerprint catches a single
  // flipped mantissa bit in any record.
  m.identical = core::campaign_fingerprint(a) == core::campaign_fingerprint(b);
  m.spliced = forked.spliced_runs_executed() - spliced_before;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_value =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_replay_fork.json";
  const double floor = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::size_t n_bits = n_value / 2;

  auto suite = sim::base_suite();
  ads::PipelineConfig config;
  config.seed = 101;  // matches bench_e3_random_fi

  core::ExperimentOptions full_options;
  full_options.fork_replays = false;
  std::printf("precomputing goldens (full engine, %zu scenarios)...\n",
              suite.size());
  const core::Experiment full(suite, config, {}, full_options);

  core::ExperimentOptions fork_options;  // defaults: fork on, stride 4
  std::printf("precomputing goldens (forked engine, stride %zu)...\n",
              fork_options.checkpoint_stride);
  const core::Experiment forked(suite, config, {}, fork_options);

  // --- E3 random campaign, forked vs full -------------------------------
  std::printf("E3 random campaigns: %zu value + %zu bit-flip runs each...\n",
              n_value, n_bits);
  const core::RandomValueModel values(n_value, 999);
  const core::BitFlipModel bitflips(n_bits, 555);
  const Measurement value_m = measure(full, forked, values);
  const Measurement bit_m = measure(full, forked, bitflips);

  const double campaign_full = value_m.full_seconds + bit_m.full_seconds;
  const double campaign_forked = value_m.forked_seconds + bit_m.forked_seconds;
  const double campaign_speedup =
      campaign_forked > 0.0 ? campaign_full / campaign_forked : 0.0;
  const bool campaign_identical = value_m.identical && bit_m.identical;

  std::printf("  value:   full %.2fs forked %.2fs  speedup %.2fx  spliced "
              "%zu/%zu  %s\n",
              value_m.full_seconds, value_m.forked_seconds, value_m.speedup(),
              value_m.spliced, value_m.runs,
              value_m.identical ? "identical" : "DIVERGED");
  std::printf("  bitflip: full %.2fs forked %.2fs  speedup %.2fx  spliced "
              "%zu/%zu  %s\n",
              bit_m.full_seconds, bit_m.forked_seconds, bit_m.speedup(),
              bit_m.spliced, bit_m.runs,
              bit_m.identical ? "identical" : "DIVERGED");
  std::printf("  campaign: %.2fx (target >= 3x, floor %.1fx)\n",
              campaign_speedup, floor);

  // --- Early/mid/late injection sweep ------------------------------------
  struct SweepRow {
    double fraction;
    Measurement m;
  };
  std::vector<SweepRow> sweep;
  const std::size_t n_sweep = std::max<std::size_t>(n_value / 3, 12);
  for (const double fraction : {0.1, 0.5, 0.9}) {
    const PinnedTimeModel model(n_sweep, fraction, full);
    sweep.push_back({fraction, measure(full, forked, model)});
    const Measurement& m = sweep.back().m;
    std::printf("  inject @%2.0f%% of run: speedup %.2fx  spliced %zu/%zu  "
                "%s\n",
                fraction * 100.0, m.speedup(), m.spliced, m.runs,
                m.identical ? "identical" : "DIVERGED");
  }

  bool sweep_identical = true;
  for (const auto& row : sweep) sweep_identical &= row.m.identical;

  // --- Cost-model counters ------------------------------------------------
  std::printf("  full-run cost:   mean %.4fs median %.4fs (golden runs)\n",
              full.mean_run_wall_seconds(), full.median_run_wall_seconds());
  std::printf("  forked-run cost: mean %.4fs over %zu replays (%zu spliced)\n",
              forked.mean_forked_run_wall_seconds(),
              forked.forked_runs_executed(), forked.spliced_runs_executed());

  // --- JSON ---------------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n";
  json << "  \"bench\": \"replay_fork\",\n";
  json << "  \"checkpoint_stride\": " << fork_options.checkpoint_stride << ",\n";
  json << "  \"campaign\": {\"runs\": " << (value_m.runs + bit_m.runs)
       << ", \"full_wall_seconds\": " << campaign_full
       << ", \"forked_wall_seconds\": " << campaign_forked
       << ", \"speedup\": " << campaign_speedup << ", \"identical\": "
       << (campaign_identical ? "true" : "false") << "},\n";
  json << "  \"value_campaign\": {\"speedup\": " << value_m.speedup()
       << ", \"spliced\": " << value_m.spliced << ", \"runs\": "
       << value_m.runs << "},\n";
  json << "  \"bitflip_campaign\": {\"speedup\": " << bit_m.speedup()
       << ", \"spliced\": " << bit_m.spliced << ", \"runs\": " << bit_m.runs
       << "},\n";
  json << "  \"by_inject_fraction\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i) json << ", ";
    json << "{\"fraction\": " << sweep[i].fraction << ", \"speedup\": "
         << sweep[i].m.speedup() << ", \"spliced\": " << sweep[i].m.spliced
         << ", \"runs\": " << sweep[i].m.runs << "}";
  }
  json << "],\n";
  json << "  \"mean_full_run_seconds\": " << full.mean_run_wall_seconds()
       << ",\n";
  json << "  \"median_full_run_seconds\": " << full.median_run_wall_seconds()
       << ",\n";
  json << "  \"mean_forked_run_seconds\": "
       << forked.mean_forked_run_wall_seconds() << ",\n";
  json << "  \"speedup_floor\": " << floor << "\n";
  json << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!campaign_identical || !sweep_identical) {
    std::fprintf(stderr,
                 "FAIL: forked replay diverged from full replay (results "
                 "must be bit-identical)\n");
    return 1;
  }
  if (campaign_speedup < floor) {
    std::fprintf(stderr, "FAIL: campaign speedup %.2fx below the %.1fx floor\n",
                 campaign_speedup, floor);
    return 1;
  }
  std::printf("OK: %.2fx campaign speedup, forked == full\n", campaign_speedup);
  return 0;
}
