// E8 -- Natural-resilience ablation (paper §II-C): the ADS masks random
// faults because (a) high recompute rate limits transient propagation,
// (b) EKF fusion and PID smoothing absorb corruption. We re-run the same
// random value-fault campaign with each mechanism toggled and at several
// recompute rates, and report how outcome rates shift.
#include <cstdio>
#include <limits>
#include <string>

#include "ads/pipeline.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

namespace {

struct AblationRow {
  std::string label;
  core::CampaignStats stats;
};

core::CampaignStats run_config(const ads::PipelineConfig& config,
                               std::size_t budget, std::uint64_t seed) {
  std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                      sim::base_suite()[2],
                                      sim::base_suite()[4]};
  const core::Experiment experiment(suite, config);
  return experiment.run(core::RandomValueModel(budget, seed));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  std::printf("E8: resilience-mechanism ablation (%zu injections per "
              "config)\n",
              budget);

  std::vector<AblationRow> rows;

  {
    ads::PipelineConfig config;
    config.seed = 81;
    rows.push_back({"baseline (EKF+PID, 30 Hz)",
                    run_config(config, budget, 4242)});
  }
  {
    ads::PipelineConfig config;
    config.seed = 81;
    config.use_ekf = false;
    rows.push_back({"no EKF (raw GPS/odom)", run_config(config, budget, 4242)});
  }
  {
    ads::PipelineConfig config;
    config.seed = 81;
    config.use_pid = false;
    rows.push_back({"no PID (raw plan commands)",
                    run_config(config, budget, 4242)});
  }
  {
    ads::PipelineConfig config;
    config.seed = 81;
    config.use_ekf = false;
    config.use_pid = false;
    rows.push_back({"no EKF, no PID", run_config(config, budget, 4242)});
  }
  {
    // Backup system: the paper expects hang recovery "with the
    // backup/redundant systems that are present in AVs today"; the safing
    // watchdog is that backup, braking to a minimal-risk stop when the
    // primary control path dies.
    ads::PipelineConfig config;
    config.seed = 81;
    config.watchdog.enabled = true;
    rows.push_back({"with safing watchdog", run_config(config, budget, 4242)});
  }
  // Recompute-rate sweep: slower planning/control lets transients persist.
  for (double hz : {15.0, 7.5}) {
    ads::PipelineConfig config;
    config.seed = 81;
    config.perception_hz = hz;
    config.planner_hz = hz;
    config.control_hz = hz;
    rows.push_back({"pipeline at " + std::to_string(hz).substr(0, 4) + " Hz",
                    run_config(config, budget, 4242)});
  }

  // Hang-recovery ablation: min/max corruption cannot produce the
  // non-finite values that kill a module, so the watchdog's contribution
  // is measured on a dedicated hang-stress campaign -- NaN into the plan
  // at random instants, which reliably hangs the control module.
  util::Table hang_table({"configuration", "runs", "hung", "collided",
                          "mean final speed (m/s)"});
  for (bool watchdog_on : {false, true}) {
    std::size_t hung = 0;
    std::size_t collided = 0;
    double speed_sum = 0.0;
    const std::size_t kRuns = 8;
    std::vector<sim::Scenario> suite = {sim::base_suite()[0],
                                        sim::base_suite()[1]};
    for (std::size_t i = 0; i < kRuns; ++i) {
      const sim::Scenario& scenario = suite[i % suite.size()];
      sim::World world(scenario.world);
      ads::PipelineConfig config;
      config.seed = 81;
      config.watchdog.enabled = watchdog_on;
      ads::AdsPipeline pipeline(world, config);
      ads::ValueFault fault;
      fault.target = "plan.target_accel";
      fault.value = std::numeric_limits<double>::quiet_NaN();
      fault.start_time = 6.0 + 2.5 * static_cast<double>(i);
      fault.hold_duration = 0.2;
      pipeline.arm_value_fault(fault);
      pipeline.run_for(scenario.duration);
      if (pipeline.any_module_hung()) ++hung;
      if (world.status().collided) ++collided;
      speed_sum += world.ego().v;
    }
    hang_table.add_row(
        {watchdog_on ? "hang + safing watchdog" : "hang, no backup",
         util::Table::fmt_int(static_cast<long long>(kRuns)),
         util::Table::fmt_int(static_cast<long long>(hung)),
         util::Table::fmt_int(static_cast<long long>(collided)),
         util::Table::fmt(speed_sum / static_cast<double>(kRuns), 1)});
  }
  hang_table.print("E8b: hang recovery (paper: backup/redundant systems "
                   "recover from hangs)");

  util::Table table({"configuration", "masked", "sdc", "hang", "hazard",
                     "hazard rate"});
  for (const auto& row : rows) {
    const auto total = static_cast<double>(
        std::max<std::size_t>(1, row.stats.total()));
    table.add_row(
        {row.label,
         util::Table::fmt_int(static_cast<long long>(row.stats.masked)),
         util::Table::fmt_int(static_cast<long long>(row.stats.sdc_benign)),
         util::Table::fmt_int(static_cast<long long>(row.stats.hang)),
         util::Table::fmt_int(static_cast<long long>(row.stats.hazard)),
         util::Table::fmt_pct(row.stats.hazard / total)});
  }
  table.print("E8: same random campaign, resilience features toggled "
              "(paper: EKF, PID and recompute rate mask faults)");
  return 0;
}
