// E10 (extension) -- Situation library and per-variable criticality. The
// paper's discussion proposes mining the critical faults into "a library
// of situations [to] help manufacturers develop rules and conditions for
// AV testing and safe driving"; this bench runs the Bayesian selection on
// a compact suite, replays the top faults, then prints (a) the clustered
// situation library and (b) the validated per-variable importance table.
#include <algorithm>
#include <cstdio>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/importance.h"
#include "core/scene_library.h"
#include "core/selector.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  const std::size_t replay_budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  std::printf("E10: situation library + variable criticality "
              "(replay budget %zu)\n",
              replay_budget);

  std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                      sim::base_suite()[2],
                                      sim::example1_lead_lane_change(),
                                      sim::example2_tesla_reveal()};
  ads::PipelineConfig config;
  config.seed = 101;
  const core::Experiment experiment(suite, config);
  const auto& goldens = experiment.goldens();

  const core::SafetyPredictor predictor(goldens);
  const core::BayesianFaultSelector selector(predictor);
  const auto catalog =
      core::build_catalog(suite, core::default_target_ranges(), 7.5);
  const core::SelectionResult selection = selector.select(catalog, goldens);
  std::printf("selected %zu critical faults out of %zu candidates\n",
              selection.critical.size(), selection.candidates_total);

  const std::size_t n =
      std::min(replay_budget, selection.critical.size());
  std::vector<core::SelectedFault> top(selection.critical.begin(),
                                       selection.critical.begin() + n);
  const core::CampaignStats replayed =
      experiment.run(core::SelectedFaultModel(top));

  // (a) Situation library over every selected fault's scene.
  const auto features = core::extract_features(selection.critical, goldens);
  core::SceneLibraryConfig lib_config;
  lib_config.clusters = 4;
  const core::SceneLibrary library(features, lib_config);
  library.to_table().print(
      "E10a: situation library (clusters of critical-fault scenes)");

  // (b) Validated per-variable criticality over the replayed subset.
  const auto report = core::rank_targets(top, replayed);
  report.to_table().print(
      "E10b: per-variable criticality (validated by replay)");
  std::printf("hazard share of top-3 variables: %.1f%%\n",
              100.0 * report.hazard_share_of_top(3));
  return 0;
}
