// Parallel campaign scaling: injections/sec through the Experiment engine
// at 1/2/4/8 threads, with a determinism cross-check (every thread count
// must reproduce the single-threaded records exactly). Emits a
// BENCH_parallel.json summary so later perf PRs have a trajectory to beat.
//
//   ./bench_parallel_scaling [budget] [out.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

namespace {

// Record fingerprint excluding wall_seconds (the only timing-dependent
// field); used to assert bit-identical results across thread counts.
// Shared with the determinism tests and the replay-fork divergence gate.
std::string fingerprint(const core::CampaignStats& stats) {
  return core::campaign_fingerprint(stats);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 24;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_parallel.json";

  // Honesty gate: on a single-hardware-thread host every row collapses to
  // speedup ~1.0. Recording that as scaling data would poison the
  // trajectory later perf PRs compare against, so refuse to run instead of
  // quietly emitting a meaningless BENCH_parallel.json.
  if (core::resolve_thread_count(0) == 1) {
    std::fprintf(stderr,
                 "error: this host exposes a single hardware thread, so a "
                 "thread-scaling bench cannot measure anything -- every "
                 "speedup would be ~1.0 by construction. Run "
                 "bench_parallel_scaling on a multi-core host.\n");
    return 1;
  }

  std::printf("parallel scaling: %zu random value injections per thread "
              "count (host has %u hardware threads)\n",
              budget, core::resolve_thread_count(0));

  std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                      sim::base_suite()[2]};
  ads::PipelineConfig config;
  config.seed = 7;
  const core::RandomValueModel model(budget, 31337);

  util::Table table({"threads", "wall (s)", "injections/s", "speedup",
                     "identical to 1-thread"});
  std::string baseline_fp;
  double baseline_wall = 0.0;
  std::ostringstream rows_json;

  bool first = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    core::ExperimentOptions options;
    options.executor.threads = threads;
    const core::Experiment experiment(suite, config, {}, options);
    const core::CampaignStats stats = experiment.run(model);

    const std::string fp = fingerprint(stats);
    if (threads == 1) {
      baseline_fp = fp;
      baseline_wall = stats.wall_seconds;
    }
    const bool identical = fp == baseline_fp;
    const double rate = stats.wall_seconds > 0.0
                            ? static_cast<double>(stats.total()) / stats.wall_seconds
                            : 0.0;
    const double speedup =
        stats.wall_seconds > 0.0 ? baseline_wall / stats.wall_seconds : 0.0;
    table.add_row({util::Table::fmt_int(threads),
                   util::Table::fmt(stats.wall_seconds, 2),
                   util::Table::fmt(rate, 2), util::Table::fmt(speedup, 2),
                   identical ? "yes" : "NO -- DETERMINISM BUG"});

    if (!first) rows_json << ",";
    first = false;
    rows_json << "\n    {\"threads\": " << threads << ", \"wall_seconds\": "
              << stats.wall_seconds << ", \"injections_per_second\": " << rate
              << ", \"speedup\": " << speedup << ", \"identical\": "
              << (identical ? "true" : "false") << "}";
    if (!identical) {
      std::fprintf(stderr, "FATAL: %u-thread campaign diverged from the "
                           "single-threaded records\n", threads);
      return 1;
    }
  }

  table.print("parallel campaign scaling (deterministic executor)");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"parallel_scaling\",\n  \"budget\": " << budget
      << ",\n  \"hardware_threads\": " << core::resolve_thread_count(0)
      << ",\n  \"rows\": [" << rows_json.str() << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
