// E4 -- Case study 1 (paper Fig. 4, Example 1): an "accelerate"
// corruption injected while the merging vehicle has squeezed the safety
// potential causes a crash; the same fault at a comfortable delta is
// absorbed. We sweep the injection time across the scenario and report
// delta at injection vs outcome -- reproducing the "inject at the precise
// time instant" argument.
//
// The corrupted variable is the planner's raw acceleration command
// U_{A,t} (the paper's "throttle command"): corrupting the post-PID
// throttle pedal alone is defeated by brake override (brake authority
// exceeds engine torque on any road vehicle), while a corrupted plan both
// throttles up and silences braking, which originates downstream of it.
#include <algorithm>
#include <cstdio>

#include "core/experiment.h"
#include "core/report.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

int main() {
  std::printf("E4: accel-fault timing sweep on the Example 1 scenario\n");

  const sim::Scenario scenario = sim::example1_lead_lane_change();
  std::vector<sim::Scenario> suite{scenario};
  ads::PipelineConfig config;
  config.seed = 41;
  const core::Experiment experiment(suite, config);
  const auto& golden = experiment.goldens()[0];

  const double hold = 3.0;  // s, sustained through the window
  util::Table table({"inject t (s)", "min golden delta in window (m)",
                     "outcome", "min delta after (m)"});

  for (double t_inject = 4.0; t_inject < scenario.duration - 6.0;
       t_inject += 2.0) {
    // Tightest golden delta during the fault's hold window -- the
    // quantity the fault has to overcome.
    const auto scene_index =
        static_cast<std::size_t>(t_inject * config.scene_hz);
    const auto last_scene =
        static_cast<std::size_t>((t_inject + hold) * config.scene_hz);
    if (scene_index >= golden.scenes.size()) break;
    double golden_delta = 1e18;
    for (std::size_t s = scene_index;
         s <= last_scene && s < golden.scenes.size(); ++s)
      golden_delta = std::min(golden_delta, golden.scenes[s].true_delta_lon);

    sim::World world(scenario.world);
    ads::AdsPipeline pipeline(world, config);
    ads::ValueFault fault;
    fault.target = "plan.target_accel";
    fault.value = 2.5;  // planner range max (paper: throttle 0.2 -> 0.6)
    fault.start_time = t_inject;
    fault.hold_duration = hold;
    pipeline.arm_value_fault(fault);
    pipeline.run_for(scenario.duration);

    const core::RunResult result = core::classify_run(
        golden.scenes, pipeline.scenes(), pipeline.any_module_hung());
    table.add_row({util::Table::fmt(t_inject, 1),
                   util::Table::fmt(golden_delta, 1),
                   core::outcome_name(result.outcome),
                   util::Table::fmt(result.min_delta_lon, 1)});
  }
  table.print("E4: outcome vs injection time (hazard only in the "
              "small-delta window)");

  // Locate the tightest window for the reader.
  double min_delta = 1e18;
  double t_min = 0.0;
  for (const auto& scene : golden.scenes) {
    if (scene.lead_gap >= 0.0 && scene.true_delta_lon < min_delta) {
      min_delta = scene.true_delta_lon;
      t_min = scene.t;
    }
  }
  std::printf("\ntightest golden window: delta_lon = %.1f m at t = %.1f s\n",
              min_delta, t_min);
  return 0;
}
