// E9 -- BN inference cost (paper §III-B: "BNs enable rapid probabilistic
// inference, which allows DriveFI to quickly find safety-critical
// faults"): joint compilation + conditioning latency vs network size, and
// the unroll-depth ablation (2-TBN vs 3-TBN vs 5-TBN) for both cost and
// one-step accuracy.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "bn/dbn.h"
#include "core/bayes_model.h"
#include "core/trace.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace drivefi;

namespace {

// Synthetic chain+confounder network with n nodes.
// Node names built via append rather than operator+ to dodge GCC 12's
// -Wrestrict false positive (PR105329) under -O2 -Werror.
std::string node_name(std::size_t i) {
  std::string name("x");
  name += std::to_string(i);
  return name;
}

bn::LinearGaussianNetwork synthetic_network(std::size_t n) {
  bn::LinearGaussianNetwork net;
  util::Rng rng(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = node_name(i);
    if (i == 0) {
      net.add_node(name, {}, {}, 0.0, 1.0);
    } else if (i == 1) {
      net.add_node(name, {"x0"}, {rng.uniform(-1, 1)}, 0.1, 0.5);
    } else {
      net.add_node(name, {node_name(i - 1), node_name(i - 2)},
                   {rng.uniform(-0.8, 0.8), rng.uniform(-0.3, 0.3)}, 0.05,
                   0.3);
    }
  }
  return net;
}

void bm_joint_compile(benchmark::State& state) {
  const auto net = synthetic_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto joint = net.joint();
    benchmark::DoNotOptimize(joint);
  }
}
BENCHMARK(bm_joint_compile)->Arg(10)->Arg(30)->Arg(60)->Arg(120)->Arg(200);

void bm_posterior(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto net = synthetic_network(n);
  const std::string last = node_name(n - 1);
  for (auto _ : state) {
    auto mean = net.posterior_mean({{"x0", 1.0}, {"x1", 0.5}}, {last});
    benchmark::DoNotOptimize(mean);
  }
}
BENCHMARK(bm_posterior)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void bm_do_posterior(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto net = synthetic_network(n);
  const std::string mid = node_name(n / 2);
  const std::string last = node_name(n - 1);
  for (auto _ : state) {
    auto mean = net.do_posterior_mean({{mid, 2.0}}, {{"x0", 1.0}}, {last});
    benchmark::DoNotOptimize(mean);
  }
}
BENCHMARK(bm_do_posterior)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void unroll_depth_report() {
  auto suite = sim::base_suite();
  suite.resize(4);
  ads::PipelineConfig config;
  config.seed = 91;
  const auto goldens = core::run_golden_suite(suite, config);

  util::Table table({"unroll depth", "BN nodes", "horizon (scenes)",
                     "predict MAE true_v (m/s)", "predict wall (us/call)"});
  for (int slices : {3, 4, 6}) {
    core::SafetyPredictorConfig pc;
    pc.slices = slices;
    const core::SafetyPredictor predictor(goldens, pc);
    const auto horizon = static_cast<std::size_t>(predictor.horizon());

    util::RunningStats err;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t calls = 0;
    for (const auto& trace : goldens) {
      for (std::size_t k = 5; k + horizon < trace.scenes.size(); k += 5) {
        const auto pred = predictor.predict_nominal(trace, k);
        if (!pred) continue;
        err.add(std::abs(pred->predicted_v - trace.scenes[k + horizon].true_v));
        ++calls;
      }
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row(
        {util::Table::fmt_int(slices),
         util::Table::fmt_int(static_cast<long long>(
             predictor.network().node_count())),
         util::Table::fmt_int(static_cast<long long>(horizon)),
         util::Table::fmt(err.mean(), 3),
         util::Table::fmt(calls ? wall / static_cast<double>(calls) * 1e6
                                : 0.0,
                          1)});
  }
  table.print("E9: unroll-depth ablation (3/4/6-TBN)");
}

}  // namespace

int main(int argc, char** argv) {
  unroll_depth_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
