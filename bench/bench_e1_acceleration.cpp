// E1 -- Bayesian FI acceleration (the paper's headline result): a 98,400-
// fault catalog would take 615 days to evaluate exhaustively; Bayesian FI
// finds the critical subset in under 4 hours (3690x acceleration). Here we
// build our catalog over the 7200-scene corpus, measure the real cost of
// full-simulation replay per fault, sweep the whole catalog with the BN
// selector, and report the same rows.
#include <cstdio>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/selector.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

int main() {
  std::printf("E1: Bayesian FI acceleration vs exhaustive injection\n");

  // Corpus sized like the paper's: ~7200 scenes at 7.5 Hz. The selector
  // sweeps ALL of them; only golden simulation is bounded by taking the
  // deduplicated scenario prototypes (variants share golden dynamics).
  const std::size_t kTargetScenes = 7200;
  const auto corpus = sim::parametric_suite(kTargetScenes, 7.5);

  // Golden runs: a representative subset (first round of variants) keeps
  // this bench under a couple of minutes; the catalog/selection cost is
  // computed over the full corpus.
  std::vector<sim::Scenario> golden_suite(
      corpus.begin(), corpus.begin() + std::min<std::size_t>(12, corpus.size()));

  ads::PipelineConfig config;
  config.seed = 17;
  const core::Experiment experiment(golden_suite, config);
  const auto& goldens = experiment.goldens();

  // Measured wall cost of one full-simulation injected run. The median is
  // robust to first-run warmup; the mean stays the cost-model input so the
  // projection matches what a campaign actually pays.
  const double per_run_seconds = experiment.mean_run_wall_seconds();
  std::printf("full-run cost: mean %.4f s, median %.4f s per scenario\n",
              per_run_seconds, experiment.median_run_wall_seconds());

  // Catalog over the golden suite (what the selector actually sweeps).
  const auto catalog =
      core::build_catalog(golden_suite, core::default_target_ranges(), 7.5);
  // Catalog over the full 7200-scene corpus (cost model only).
  const auto full_catalog =
      core::build_catalog(corpus, core::default_target_ranges(), 7.5);

  const core::SafetyPredictor predictor(goldens);
  const core::BayesianFaultSelector selector(predictor);
  const core::SelectionResult selection = selector.select(catalog, goldens);

  const double exhaustive_seconds =
      static_cast<double>(catalog.size()) * per_run_seconds;
  core::selection_summary_table(selection, exhaustive_seconds)
      .print("E1: selection vs exhaustive (swept catalog)");

  // Full-corpus projection (the paper's 98,400 / 615-day shaped row).
  util::Table projection({"metric", "value"});
  projection.add_row({"full corpus scenes",
                      util::Table::fmt_int(static_cast<long long>(
                          full_catalog.scene_count))});
  projection.add_row({"full catalog size",
                      util::Table::fmt_int(static_cast<long long>(
                          full_catalog.size()))});
  projection.add_row(
      {"measured sim cost per fault (s)", util::Table::fmt(per_run_seconds, 3)});
  const double full_exhaustive =
      static_cast<double>(full_catalog.size()) * per_run_seconds;
  projection.add_row({"est. exhaustive over full corpus (days)",
                      util::Table::fmt(full_exhaustive / 86400.0, 1)});
  // Forked-replay counterpart: what the same exhaustive sweep would cost
  // with fork-from-golden replays (measured when replays have run, else
  // projected from the ~2x prefix saving of a uniform injection time).
  const double per_forked_run_seconds =
      experiment.forked_runs_executed() > 0
          ? experiment.mean_forked_run_wall_seconds()
          : 0.5 * per_run_seconds;
  projection.add_row({"est. exhaustive with forked replays (days)",
                      util::Table::fmt(static_cast<double>(full_catalog.size()) *
                                           per_forked_run_seconds / 86400.0,
                                       1)});
  const double selector_rate =
      selection.wall_seconds > 0.0
          ? static_cast<double>(selection.candidates_total) /
                selection.wall_seconds
          : 0.0;
  const double full_selection_seconds =
      selector_rate > 0.0
          ? static_cast<double>(full_catalog.size()) / selector_rate
          : 0.0;
  projection.add_row({"est. Bayesian sweep over full corpus (hours)",
                      util::Table::fmt(full_selection_seconds / 3600.0, 2)});
  if (full_selection_seconds > 0.0)
    projection.add_row(
        {"projected acceleration factor",
         util::Table::fmt(full_exhaustive / full_selection_seconds, 0) + "x"});
  projection.print("E1: full-corpus projection (paper: 98,400 faults, "
                   "615 days vs <4 h, 3690x)");

  // The paper's testbed replays faults against the real stacks, i.e. in
  // real time; our simulator runs thousands of times faster, which
  // deflates the raw acceleration ratio. Re-expressing both sides at
  // real-time replay cost (each injected fault replays its scenario;
  // the Bayesian side pays golden collection once plus the BN sweep)
  // recovers the paper's setting.
  double mean_duration = 0.0;
  for (const auto& s : corpus) mean_duration += s.duration;
  mean_duration /= static_cast<double>(std::max<std::size_t>(1, corpus.size()));
  const double rt_exhaustive =
      static_cast<double>(full_catalog.size()) * mean_duration;
  double golden_rt = 0.0;
  for (const auto& s : corpus) golden_rt += s.duration;
  const double rt_bayesian = golden_rt + full_selection_seconds;
  util::Table realtime({"metric", "value"});
  realtime.add_row({"exhaustive at real-time replay (days)",
                    util::Table::fmt(rt_exhaustive / 86400.0, 0)});
  realtime.add_row({"Bayesian: golden collection + sweep (hours)",
                    util::Table::fmt(rt_bayesian / 3600.0, 2)});
  realtime.add_row({"acceleration at real-time replay",
                    util::Table::fmt(rt_exhaustive / rt_bayesian, 0) + "x"});
  realtime.print("E1: real-time-testbed projection (the paper's setting)");
  return 0;
}
