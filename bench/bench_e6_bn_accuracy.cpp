// E6 -- Counterfactual accuracy of the 3-TBN (paper Fig. 3/6, §III-B):
// how well does M-hat_{t+1} from BN inference match the ground-truth
// simulator, both fault-free and under interventions? Also runs the
// do-vs-observe ablation (DESIGN.md ablation 3). Includes google-benchmark
// timings of a single prediction.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/bayes_model.h"
#include "core/selector.h"
#include "core/trace.h"
#include "sim/scenario.h"
#include "util/stats.h"
#include "util/table.h"

using namespace drivefi;

namespace {

struct Fixture {
  std::vector<core::GoldenTrace> goldens;
  std::unique_ptr<core::SafetyPredictor> predictor;

  Fixture() {
    auto suite = sim::base_suite();
    suite.resize(5);
    ads::PipelineConfig config;
    config.seed = 61;
    goldens = core::run_golden_suite(suite, config);
    predictor = std::make_unique<core::SafetyPredictor>(goldens);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void report_accuracy() {
  auto& f = fixture();

  // Fault-free horizon-step prediction error per kinematic variable.
  util::RunningStats err_v, err_y, err_theta;
  util::RunningStats delta_err;
  std::size_t sign_agree = 0, sign_total = 0;
  const auto horizon = static_cast<std::size_t>(f.predictor->horizon());
  for (const auto& trace : f.goldens) {
    for (std::size_t k = 5; k + horizon < trace.scenes.size(); k += 3) {
      const auto pred = f.predictor->predict_nominal(trace, k);
      if (!pred) continue;
      const auto& next = trace.scenes[k + horizon];
      err_v.add(std::abs(pred->predicted_v - next.true_v));
      err_y.add(std::abs(pred->predicted_y - next.true_y_off));
      err_theta.add(std::abs(pred->predicted_theta - next.true_theta));
      delta_err.add(std::abs(pred->delta_lon - next.true_delta_lon));
      // Sign agreement on delta -- the quantity that defines F_crit.
      if ((pred->delta_lon > 0.0) == (next.true_delta_lon > 0.0))
        ++sign_agree;
      ++sign_total;
    }
  }

  util::Table table({"quantity", "MAE", "n"});
  table.add_row({"v (m/s)", util::Table::fmt(err_v.mean(), 3),
                 util::Table::fmt_int(static_cast<long long>(err_v.count()))});
  table.add_row({"y_off (m)", util::Table::fmt(err_y.mean(), 3),
                 util::Table::fmt_int(static_cast<long long>(err_y.count()))});
  table.add_row({"theta (rad)", util::Table::fmt(err_theta.mean(), 4),
                 util::Table::fmt_int(
                     static_cast<long long>(err_theta.count()))});
  table.add_row({"delta_lon (m)", util::Table::fmt(delta_err.mean(), 2),
                 util::Table::fmt_int(
                     static_cast<long long>(delta_err.count()))});
  table.print("E6: fault-free one-step prediction error (M-hat vs truth)");

  std::printf("delta-sign agreement: %.2f%% (%zu/%zu)\n",
              100.0 * static_cast<double>(sign_agree) /
                  static_cast<double>(std::max<std::size_t>(1, sign_total)),
              sign_agree, sign_total);

  // do() vs observational conditioning under a brake intervention: the
  // do-prediction must track the causal slowdown; naive conditioning is
  // contaminated by the (pre-fault) downstream evidence.
  util::RunningStats do_effect, obs_effect;
  for (const auto& trace : f.goldens) {
    for (std::size_t k = 10; k + 1 < trace.scenes.size(); k += 7) {
      const auto nominal = f.predictor->predict_nominal(trace, k);
      const auto with_do = f.predictor->predict(trace, k, "brake", 1.0);
      const auto with_obs =
          f.predictor->predict_observational(trace, k, "brake", 1.0);
      if (!nominal || !with_do || !with_obs) continue;
      do_effect.add(nominal->predicted_v - with_do->predicted_v);
      obs_effect.add(nominal->predicted_v - with_obs->predicted_v);
    }
  }
  util::Table ablation({"inference", "mean predicted slowdown (m/s)", "n"});
  ablation.add_row({"do(brake=1)  [causal]",
                    util::Table::fmt(do_effect.mean(), 3),
                    util::Table::fmt_int(
                        static_cast<long long>(do_effect.count()))});
  ablation.add_row({"observe brake=1 [naive]",
                    util::Table::fmt(obs_effect.mean(), 3),
                    util::Table::fmt_int(
                        static_cast<long long>(obs_effect.count()))});
  ablation.print("E6 ablation: do-operator vs naive conditioning");
}

void bm_predict_nominal(benchmark::State& state) {
  auto& f = fixture();
  // goldens[1] (lead_cruise) has a tracked lead throughout, so every call
  // performs a real inference rather than bailing on the lead-gap guard.
  const auto& trace = f.goldens[1];
  std::size_t k = 10;
  for (auto _ : state) {
    auto pred = f.predictor->predict_nominal(trace, k);
    benchmark::DoNotOptimize(pred);
    k = 10 + (k + 1) % 50;
  }
}
BENCHMARK(bm_predict_nominal);

void bm_predict_do(benchmark::State& state) {
  auto& f = fixture();
  const auto& trace = f.goldens[1];
  std::size_t k = 10;
  for (auto _ : state) {
    auto pred = f.predictor->predict(trace, k, "throttle", 1.0);
    benchmark::DoNotOptimize(pred);
    k = 10 + (k + 1) % 50;
  }
}
BENCHMARK(bm_predict_do);

}  // namespace

int main(int argc, char** argv) {
  report_accuracy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
