// Measures the cost of durability: sharded + resumable campaigns versus
// the in-memory single-process run, and enforces the contract that they
// are bit-identical. Writes BENCH_shard_resume.json and exits nonzero if
//   - any sharded/resumed campaign diverges from the baseline in any bit, or
//   - (no-op resume scan + merge) exceeds `max_overhead_fraction` of the
//     baseline campaign wall-clock (CI gates at the default 0.10).
//
//   ./bench_shard_resume [runs] [out.json] [max_overhead_fraction]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/jsonl.h"
#include "core/manifest.h"
#include "core/result_sink.h"
#include "core/result_store.h"
#include "sim/scenario.h"

using namespace drivefi;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string campaign_jsonl(const core::Experiment& experiment,
                           const core::FaultModel& model) {
  std::ostringstream out;
  core::JsonlSink sink(out);
  std::vector<core::ResultSink*> sinks = {&sink};
  experiment.run(model, sinks);
  return core::scrub_wall_seconds(out.str());
}

std::string merged_jsonl(const core::MergedCampaign& merged) {
  std::ostringstream out;
  core::write_merged_jsonl(merged, out);
  return core::scrub_wall_seconds(out.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 48;
  std::string json_path = "BENCH_shard_resume.json";
  double max_overhead = 0.10;
  if (argc > 1) runs = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) json_path = argv[2];
  if (argc > 3) max_overhead = std::atof(argv[3]);

  const fs::path dir = fs::temp_directory_path() / "drivefi_bench_shard";
  fs::create_directories(dir);

  const std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                            sim::base_suite()[2]};
  ads::PipelineConfig config;
  config.seed = 11;
  const core::Experiment experiment(suite, config, {}, {});
  const core::RandomValueModel model(runs, 1234);

  // ---- baseline: single process, single sitting, in memory ---------------
  std::printf("baseline: %zu-run single-process campaign...\n", runs);
  const core::CampaignStats baseline = experiment.run(model);
  const std::string base_fp = core::campaign_fingerprint(baseline);
  const std::string base_jsonl = campaign_jsonl(experiment, model);
  std::printf("  %.3f s (%.1f runs/s)\n", baseline.wall_seconds,
              static_cast<double>(runs) / baseline.wall_seconds);

  bool all_identical = true;
  std::ostringstream rows;

  const auto shard_path = [&](std::size_t count, std::size_t i) {
    return (dir / ("shard_" + std::to_string(count) + "_" +
                   std::to_string(i) + ".jsonl"))
        .string();
  };
  const auto manifest_for = [&](std::size_t count, std::size_t i) {
    core::CampaignManifest manifest =
        core::make_manifest(experiment, model, "bench:shard_resume");
    manifest.shard_index = i;
    manifest.shard_count = count;
    return manifest;
  };

  // ---- sharded: N stores + merge, must be bit-identical ------------------
  double merge_seconds_2 = 0.0;
  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    std::vector<std::string> paths;
    const auto shard_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) {
      paths.push_back(shard_path(count, i));
      core::ShardResultStore store(paths.back(), manifest_for(count, i),
                                   core::StoreOpenMode::kOverwrite);
      experiment.run_shard(model, store);
    }
    const double shard_wall = seconds_since(shard_start);

    const auto merge_start = std::chrono::steady_clock::now();
    const core::MergedCampaign merged = core::merge_shards(paths);
    const double merge_wall = seconds_since(merge_start);
    if (count == 2) merge_seconds_2 = merge_wall;

    const bool identical = core::campaign_fingerprint(merged.stats) == base_fp &&
                           merged_jsonl(merged) == base_jsonl;
    all_identical = all_identical && identical;
    std::printf("shards=%zu: run %.3f s, merge %.4f s (%.0f records/s), "
                "identical=%s\n",
                count, shard_wall, merge_wall,
                static_cast<double>(runs) / merge_wall,
                identical ? "true" : "false");
    if (!rows.str().empty()) rows << ",";
    rows << "\n    {\"count\": " << count << ", \"wall_seconds\": "
         << shard_wall << ", \"merge_seconds\": " << merge_wall
         << ", \"merge_records_per_second\": "
         << static_cast<double>(runs) / merge_wall << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
  }

  // ---- kill mid-campaign, then resume ------------------------------------
  // Re-create the 2-shard campaign with shard 1 "killed": keep its manifest
  // plus the first half of its records, then a torn trailing line (the
  // crash happened mid-append).
  const std::string victim = shard_path(2, 1);
  std::vector<std::string> lines;
  {
    std::ifstream in(victim);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  const std::size_t keep_records = (lines.size() - 1) / 2;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i <= keep_records; ++i) out << lines[i] << '\n';
    out << "{\"type\":\"run\",\"run_index";  // torn
  }
  const std::size_t killed_after = keep_records;
  const std::size_t to_recover = (lines.size() - 1) - keep_records;

  const auto resume_start = std::chrono::steady_clock::now();
  std::size_t recovered = 0;
  {
    core::ShardResultStore store(victim, manifest_for(2, 1),
                                 core::StoreOpenMode::kResume);
    recovered = experiment.run_shard(model, store).total();
  }
  const double resume_wall = seconds_since(resume_start);

  // No-op resume on the now-complete store: the pure durability overhead a
  // resume adds on top of the work itself (scan + validate + reopen).
  const auto noop_start = std::chrono::steady_clock::now();
  {
    core::ShardResultStore store(victim, manifest_for(2, 1),
                                 core::StoreOpenMode::kResume);
    experiment.run_shard(model, store);
  }
  const double noop_resume = seconds_since(noop_start);

  const core::MergedCampaign resumed_merge =
      core::merge_shards({shard_path(2, 0), victim});
  const bool resume_identical =
      core::campaign_fingerprint(resumed_merge.stats) == base_fp &&
      merged_jsonl(resumed_merge) == base_jsonl;
  all_identical = all_identical && resume_identical;
  std::printf("kill/resume: killed after %zu records, recovered %zu in "
              "%.3f s; no-op resume %.4f s; identical=%s\n",
              killed_after, recovered, resume_wall, noop_resume,
              resume_identical ? "true" : "false");
  if (recovered != to_recover) {
    std::printf("FAIL: resume executed %zu runs, expected %zu\n", recovered,
                to_recover);
    all_identical = false;
  }

  // ---- the durability tax, gated -----------------------------------------
  const double overhead = (noop_resume + merge_seconds_2) / baseline.wall_seconds;
  std::printf("durability overhead: (%.4f s resume scan + %.4f s merge) / "
              "%.3f s campaign = %.2f%% (max %.0f%%)\n",
              noop_resume, merge_seconds_2, baseline.wall_seconds,
              overhead * 100.0, max_overhead * 100.0);

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"shard_resume\",\n  \"runs\": " << runs
      << ",\n  \"baseline_wall_seconds\": " << baseline.wall_seconds
      << ",\n  \"shards\": [" << rows.str() << "\n  ],"
      << "\n  \"resume\": {\"killed_after\": " << killed_after
      << ", \"recovered_runs\": " << recovered
      << ", \"resume_wall_seconds\": " << resume_wall
      << ", \"noop_resume_seconds\": " << noop_resume << ", \"identical\": "
      << (resume_identical ? "true" : "false") << "},"
      << "\n  \"merge_seconds\": " << merge_seconds_2
      << ",\n  \"overhead_fraction\": " << overhead
      << ",\n  \"max_overhead_fraction\": " << max_overhead
      << ",\n  \"identical\": " << (all_identical ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::printf("FAIL: sharded/resumed campaign diverged from baseline\n");
    return 1;
  }
  if (overhead > max_overhead) {
    std::printf("FAIL: durability overhead %.2f%% exceeds %.2f%%\n",
                overhead * 100.0, max_overhead * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
