// Measures the cost of fleet orchestration: a coordinator + N in-process
// workers versus the single-process campaign, and enforces the contract
// that the merged fleet output is bit-identical. Writes BENCH_fleet.json
// and exits nonzero if
//   - the fleet campaign diverges from the baseline in any bit, or
//   - fleet wall clock exceeds `max_overhead_ratio` x the ideal time
//     (baseline / effective parallelism) -- the leasing, framing, and
//     store round trips must stay cheap relative to the simulation work.
//
//   ./bench_fleet [runs] [workers] [out.json] [max_overhead_ratio]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coord/coordinator.h"
#include "coord/worker.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/jsonl.h"
#include "core/manifest.h"
#include "core/result_sink.h"
#include "core/result_store.h"
#include "sim/scenario.h"

using namespace drivefi;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string campaign_jsonl(const core::Experiment& experiment,
                           const core::FaultModel& model) {
  std::ostringstream out;
  core::JsonlSink sink(out);
  std::vector<core::ResultSink*> sinks = {&sink};
  experiment.run(model, sinks);
  return core::scrub_wall_seconds(out.str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hardware_threads = core::resolve_thread_count(0);
  std::size_t runs = 48;
  // Workers are threads of this process; by default never oversubscribe
  // the host, or the overhead ratio measures time-slicing, not
  // orchestration (the same honesty rule as bench_parallel_scaling).
  std::size_t workers = std::min<std::size_t>(3, hardware_threads);
  std::string json_path = "BENCH_fleet.json";
  double max_overhead_ratio = 2.0;
  if (argc > 1) runs = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) workers = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) json_path = argv[3];
  if (argc > 4) max_overhead_ratio = std::atof(argv[4]);
  if (workers > hardware_threads)
    std::fprintf(stderr,
                 "warning: %zu workers on %u hardware threads -- the "
                 "overhead ratio will include time-slicing contention\n",
                 workers, hardware_threads);
  const fs::path dir = fs::temp_directory_path() / "drivefi_bench_fleet";
  fs::create_directories(dir);

  // Single-threaded engine: the fleet's parallelism should come from its
  // workers, so each worker runs one executor thread and the comparison
  // against the 1-thread baseline isolates orchestration overhead.
  const std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                            sim::base_suite()[2]};
  ads::PipelineConfig config;
  config.seed = 11;
  core::ExperimentOptions options;
  options.executor.threads = 1;
  const core::Experiment experiment(suite, config, {}, options);
  const core::RandomValueModel model(runs, 1234);

  // ---- baseline: single process, in memory -------------------------------
  std::printf("baseline: %zu-run single-process campaign (1 thread)...\n",
              runs);
  const core::CampaignStats baseline = experiment.run(model);
  const std::string base_fp = core::campaign_fingerprint(baseline);
  const std::string base_jsonl = campaign_jsonl(experiment, model);
  std::printf("  %.3f s (%.1f runs/s)\n", baseline.wall_seconds,
              static_cast<double>(runs) / baseline.wall_seconds);

  // ---- fleet: coordinator + N worker clients -----------------------------
  const core::CampaignManifest manifest =
      core::make_manifest(experiment, model, "bench:fleet");
  const std::string master_path = (dir / "master.jsonl").string();
  core::ShardResultStore master(master_path, manifest,
                                core::StoreOpenMode::kOverwrite);

  coord::CoordinatorConfig coord_config;
  coord_config.lease_runs = std::max<std::size_t>(1, runs / (workers * 4));
  coord_config.tick_seconds = 0.01;
  coord_config.print_progress = false;
  coord::Coordinator coordinator(manifest, master, coord_config);

  std::printf("fleet: %zu workers, lease %zu runs, port %u...\n", workers,
              coord_config.lease_runs, coordinator.port());
  const auto fleet_start = std::chrono::steady_clock::now();
  coord::FleetStats fleet;
  std::thread coordinator_thread([&] { fleet = coordinator.serve(); });

  std::vector<std::thread> worker_threads;
  for (std::size_t w = 0; w < workers; ++w) {
    worker_threads.emplace_back([&, w] {
      coord::WorkerConfig worker_config;
      worker_config.port = coordinator.port();
      worker_config.name = "bench-w" + std::to_string(w);
      worker_config.store_path =
          (dir / ("worker" + std::to_string(w) + ".jsonl")).string();
      coord::WorkerClient worker(experiment, model, "bench:fleet",
                                 worker_config);
      worker.run();
    });
  }
  for (std::thread& thread : worker_threads) thread.join();
  coordinator_thread.join();
  const double fleet_wall = seconds_since(fleet_start);

  // ---- identity + overhead gates -----------------------------------------
  const core::MergedCampaign merged = core::merge_shards({master_path});
  std::ostringstream merged_out;
  core::write_merged_jsonl(merged, merged_out);
  const bool identical =
      core::campaign_fingerprint(merged.stats) == base_fp &&
      core::scrub_wall_seconds(merged_out.str()) == base_jsonl;

  // Workers are threads of THIS process, so effective parallelism is
  // bounded by the physical core count as well as the worker count.
  const double effective_parallelism = static_cast<double>(
      std::min<std::size_t>(workers, hardware_threads));
  const double ideal_wall = baseline.wall_seconds / effective_parallelism;
  const double speedup =
      fleet_wall > 0.0 ? baseline.wall_seconds / fleet_wall : 0.0;
  const double overhead_ratio = ideal_wall > 0.0 ? fleet_wall / ideal_wall : 0.0;

  std::printf("fleet: %.3f s wall (ideal %.3f s at parallelism %.0f) -> "
              "speedup %.2fx, overhead ratio %.2f (max %.2f)\n",
              fleet_wall, ideal_wall, effective_parallelism, speedup,
              overhead_ratio, max_overhead_ratio);
  std::printf("  %zu runs stored, %zu duplicates dropped, %zu leases "
              "granted / %zu expired / %zu stolen, identical=%s\n",
              fleet.runs_completed, fleet.duplicates_dropped,
              fleet.leases_granted, fleet.leases_expired, fleet.leases_stolen,
              identical ? "true" : "false");

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"fleet\",\n  \"runs\": " << runs
      << ",\n  \"hardware_threads\": " << hardware_threads
      << ",\n  \"workers\": " << workers
      << ",\n  \"lease_runs\": " << coord_config.lease_runs
      << ",\n  \"baseline_wall_seconds\": " << baseline.wall_seconds
      << ",\n  \"fleet_wall_seconds\": " << fleet_wall
      << ",\n  \"speedup\": " << speedup
      << ",\n  \"effective_parallelism\": " << effective_parallelism
      << ",\n  \"overhead_ratio\": " << overhead_ratio
      << ",\n  \"max_overhead_ratio\": " << max_overhead_ratio
      << ",\n  \"leases_granted\": " << fleet.leases_granted
      << ",\n  \"leases_expired\": " << fleet.leases_expired
      << ",\n  \"leases_stolen\": " << fleet.leases_stolen
      << ",\n  \"duplicates_dropped\": " << fleet.duplicates_dropped
      << ",\n  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!identical) {
    std::printf("FAIL: fleet campaign diverged from the baseline\n");
    return 1;
  }
  if (overhead_ratio > max_overhead_ratio) {
    std::printf("FAIL: fleet overhead ratio %.2f exceeds %.2f\n",
                overhead_ratio, max_overhead_ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
