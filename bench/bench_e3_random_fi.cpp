// E3 -- Random fault injection baseline (paper: 5000 random injections
// over several weeks found ZERO safety hazards; 1.93% SDC, 7.35% hangs/
// kernel panics). We run random bit-flip and random value campaigns and
// report the same outcome taxonomy.
#include <cstdio>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "sim/scenario.h"

using namespace drivefi;

int main(int argc, char** argv) {
  // Budget scaled down from the paper's 5000 to keep the bench minutes-
  // scale; pass a larger count to approach the paper's campaign size.
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;

  std::printf("E3: random FI campaigns (%zu injections each)\n", budget);

  auto suite = sim::base_suite();
  ads::PipelineConfig config;
  config.seed = 101;
  const core::Experiment experiment(suite, config);

  const core::CampaignStats bitflips =
      experiment.run(core::BitFlipModel(budget, 555));
  core::outcome_table(bitflips).print(
      "E3a: random single-bit flips in architectural state "
      "(paper: 1.93% SDC, 7.35% hang/panic, 0 hazards)");

  const core::CampaignStats multibit =
      experiment.run(core::BitFlipModel(budget / 3, 777, /*bits=*/2));
  core::outcome_table(multibit).print("E3b: random double-bit flips");

  const core::CampaignStats values =
      experiment.run(core::RandomValueModel(budget, 999));
  core::outcome_table(values).print(
      "E3c: random min/max module-output corruption");

  std::printf("\nhazards found by random FI: bitflip=%zu multibit=%zu "
              "value=%zu (paper: 0)\n",
              bitflips.hazard, multibit.hazard, values.hazard);
  return 0;
}
