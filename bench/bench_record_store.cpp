// Measures the binary record store against the JSONL store it compacts:
// append throughput, bytes per record, and indexed point lookup versus a
// full JSONL scan -- then enforces the format's two contracts. Writes
// BENCH_record_store.json and exits nonzero if
//   - the binary store is not at least `min_size_ratio` (default 3.0)
//     times smaller per record than JSONL,
//   - binary append throughput falls below JSONL append throughput
//     (best-of-5 both ways; the whole point of the format is that
//     encoding varints is cheaper than formatting decimal doubles), or
//   - a real campaign exported from a binary store is not byte-identical
//     to the same campaign exported from a JSONL store.
//
//   ./bench_record_store [records] [out.json] [min_size_ratio]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/binary_store.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/jsonl.h"
#include "core/manifest.h"
#include "core/result_store.h"
#include "sim/scenario.h"
#include "util/rng.h"

using namespace drivefi;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Synthetic records with realistic field content: description lengths and
// value ranges mirror what RandomValueModel campaigns actually produce.
std::vector<core::InjectionRecord> synthetic_records(std::size_t count) {
  util::Rng rng(424242);
  std::vector<core::InjectionRecord> records;
  records.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    core::InjectionRecord record;
    record.run_index = r;
    record.scenario_index = rng.uniform_index(6);
    record.scene_index = rng.uniform_index(40);
    record.outcome = static_cast<core::Outcome>(rng.uniform_index(4));
    record.description = "random-value fault #" + std::to_string(r) +
                         " scale=" + std::to_string(rng.uniform(0.5, 2.0));
    record.min_delta_lon = rng.uniform(-5.0, 60.0);
    record.max_actuation_divergence = rng.uniform(0.0, 4.0);
    records.push_back(std::move(record));
  }
  return records;
}

core::CampaignManifest bench_manifest(std::size_t planned) {
  core::CampaignManifest manifest;
  manifest.model = "bench-synthetic";
  manifest.model_params = "n=" + std::to_string(planned);
  manifest.planned_runs = planned;
  manifest.scenario_spec = "bench:record_store";
  manifest.scenario_hash = 0x5ca1ab1eULL;
  manifest.pipeline_seed = 11;
  return manifest;
}

// Appends every record into a fresh store of `format`; returns wall time.
double append_pass(const std::string& path,
                   const core::CampaignManifest& manifest,
                   core::StoreFormat format,
                   const std::vector<core::InjectionRecord>& records) {
  const auto start = std::chrono::steady_clock::now();
  const auto store = core::open_shard_store(path, manifest, format,
                                            core::StoreOpenMode::kOverwrite);
  for (const core::InjectionRecord& record : records) store->append(record);
  return seconds_since(start);
}

double best_of(std::size_t passes, const std::function<double()>& run) {
  double best = run();
  for (std::size_t i = 1; i < passes; ++i) best = std::min(best, run());
  return best;
}

std::string merged_jsonl(const std::vector<std::string>& paths) {
  std::ostringstream out;
  core::write_merged_jsonl(core::merge_shards(paths), out);
  return core::scrub_wall_seconds(out.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t count = 20000;
  std::string json_path = "BENCH_record_store.json";
  double min_size_ratio = 3.0;
  if (argc > 1) count = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) json_path = argv[2];
  if (argc > 3) min_size_ratio = std::atof(argv[3]);

  const fs::path dir = fs::temp_directory_path() / "drivefi_bench_store";
  fs::create_directories(dir);
  const std::string jsonl_path = (dir / "bench.jsonl").string();
  const std::string binary_path = (dir / "bench.bin").string();

  const core::CampaignManifest manifest = bench_manifest(count);
  const std::vector<core::InjectionRecord> records = synthetic_records(count);

  // ---- append throughput, best of 5 fresh passes each --------------------
  const double jsonl_wall = best_of(5, [&] {
    return append_pass(jsonl_path, manifest, core::StoreFormat::kJsonl,
                       records);
  });
  const double binary_wall = best_of(5, [&] {
    return append_pass(binary_path, manifest, core::StoreFormat::kBinary,
                       records);
  });
  const double jsonl_rps = static_cast<double>(count) / jsonl_wall;
  const double binary_rps = static_cast<double>(count) / binary_wall;
  std::printf("append: jsonl %.3f s (%.0f rec/s), binary %.3f s (%.0f rec/s), "
              "speedup %.2fx\n",
              jsonl_wall, jsonl_rps, binary_wall, binary_rps,
              jsonl_wall / binary_wall);

  // ---- bytes per record: (full store - empty store) / count --------------
  // Subtracting the empty (manifest-only, sealed) store isolates the
  // per-record cost from the fixed manifest/framing overhead both formats
  // share.
  const std::string empty_jsonl = (dir / "empty.jsonl").string();
  const std::string empty_binary = (dir / "empty.bin").string();
  core::open_shard_store(empty_jsonl, manifest, core::StoreFormat::kJsonl,
                         core::StoreOpenMode::kOverwrite);
  core::open_shard_store(empty_binary, manifest, core::StoreFormat::kBinary,
                         core::StoreOpenMode::kOverwrite);
  const double jsonl_bytes =
      static_cast<double>(fs::file_size(jsonl_path) -
                          fs::file_size(empty_jsonl)) /
      static_cast<double>(count);
  const double binary_bytes =
      static_cast<double>(fs::file_size(binary_path) -
                          fs::file_size(empty_binary)) /
      static_cast<double>(count);
  const double size_ratio = jsonl_bytes / binary_bytes;
  std::printf("size: jsonl %.1f B/record, binary %.1f B/record "
              "(incl. index), ratio %.2fx (min %.1fx)\n",
              jsonl_bytes, binary_bytes, size_ratio, min_size_ratio);

  // ---- point lookup: stored index vs full JSONL scan ---------------------
  const std::size_t lookups = std::min<std::size_t>(count, 200);
  util::Rng pick(7);
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < lookups; ++i)
    targets.push_back(pick.uniform_index(count));

  const auto indexed_start = std::chrono::steady_clock::now();
  core::BinaryStoreReader reader(binary_path);
  core::InjectionRecord found;
  std::size_t hits = 0;
  for (const std::size_t run : targets)
    if (reader.lookup(run, &found)) ++hits;
  const double indexed_wall = seconds_since(indexed_start);

  const auto scan_start = std::chrono::steady_clock::now();
  std::size_t scan_hits = 0;
  for (const std::size_t run : targets) {
    // What answering "show me run N" costs without an index: parse the
    // whole JSONL shard, then search it.
    const core::ShardContent content = core::read_shard(jsonl_path);
    for (const core::InjectionRecord& record : content.records)
      if (record.run_index == run) {
        ++scan_hits;
        break;
      }
  }
  const double scan_wall = seconds_since(scan_start);
  std::printf("lookup (%zu of %zu runs): indexed %.4f s, jsonl scan %.3f s "
              "(%.0fx); used_stored_index=%s\n",
              lookups, count, indexed_wall, scan_wall,
              scan_wall / indexed_wall,
              reader.used_stored_index() ? "true" : "false");
  const bool lookups_ok = hits == lookups && scan_hits == lookups;

  // ---- export byte-identity on a real campaign ---------------------------
  const std::vector<sim::Scenario> suite = {sim::base_suite()[1],
                                            sim::base_suite()[2]};
  ads::PipelineConfig config;
  config.seed = 11;
  const core::Experiment experiment(suite, config, {}, {});
  const core::RandomValueModel model(48, 1234);
  const core::CampaignManifest real =
      core::make_manifest(experiment, model, "bench:record_store");
  const std::string real_jsonl = (dir / "real.jsonl").string();
  const std::string real_binary = (dir / "real.bin").string();
  for (const auto& [path, format] :
       {std::pair{real_jsonl, core::StoreFormat::kJsonl},
        std::pair{real_binary, core::StoreFormat::kBinary}}) {
    const auto store = core::open_shard_store(path, real, format,
                                              core::StoreOpenMode::kOverwrite);
    experiment.run_shard(model, *store);
  }
  const bool export_identical =
      merged_jsonl({real_jsonl}) == merged_jsonl({real_binary});
  std::printf("export: binary-store campaign %s the JSONL-store campaign\n",
              export_identical ? "matches" : "DIVERGES FROM");

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"record_store\",\n  \"records\": " << count
      << ",\n  \"append\": {\"jsonl_seconds\": " << jsonl_wall
      << ", \"binary_seconds\": " << binary_wall
      << ", \"jsonl_records_per_second\": " << jsonl_rps
      << ", \"binary_records_per_second\": " << binary_rps << "},"
      << "\n  \"size\": {\"jsonl_bytes_per_record\": " << jsonl_bytes
      << ", \"binary_bytes_per_record\": " << binary_bytes
      << ", \"ratio\": " << size_ratio << ", \"min_ratio\": "
      << min_size_ratio << "},"
      << "\n  \"lookup\": {\"count\": " << lookups
      << ", \"indexed_seconds\": " << indexed_wall
      << ", \"jsonl_scan_seconds\": " << scan_wall << "},"
      << "\n  \"export_identical\": "
      << (export_identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (size_ratio < min_size_ratio) {
    std::printf("FAIL: binary store is only %.2fx smaller (min %.1fx)\n",
                size_ratio, min_size_ratio);
    return 1;
  }
  if (binary_wall > jsonl_wall) {
    std::printf("FAIL: binary append (%.3f s) slower than jsonl (%.3f s)\n",
                binary_wall, jsonl_wall);
    return 1;
  }
  if (!export_identical) {
    std::printf("FAIL: binary-store export diverged from jsonl-store export\n");
    return 1;
  }
  if (!lookups_ok) {
    std::printf("FAIL: lookups missed (%zu/%zu indexed, %zu/%zu scan)\n",
                hits, lookups, scan_hits, lookups);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
