// E11 (extension, DESIGN.md ablation 1/2 companion) -- exact vs
// approximate posterior inference on the fitted ADS 3-TBN shape. The
// paper's engine relies on "rapid probabilistic inference"; this bench
// quantifies the design choice of an exact joint-Gaussian solver by
// pitting it against likelihood weighting and Gibbs sampling on the same
// query: accuracy (vs the exact mean) and wall-clock per query.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bn/dbn.h"
#include "bn/network.h"
#include "bn/sampling.h"
#include "core/bayes_model.h"
#include "util/rng.h"

using namespace drivefi;

namespace {

// A synthetic 3-TBN with the ADS template's topology and plausible
// coefficients (fitting real traces inside a microbenchmark would swamp
// the measurement).
bn::LinearGaussianNetwork synthetic_ads_tbn() {
  const bn::DbnTemplate tmpl = core::ads_dbn_template();
  const auto specs = tmpl.unrolled_specs(3);
  bn::LinearGaussianNetwork net;
  util::Rng rng(71);
  for (const auto& spec : specs) {
    std::vector<double> weights;
    for (std::size_t i = 0; i < spec.parents.size(); ++i)
      weights.push_back(rng.uniform(0.05, 0.4));
    net.add_node(spec.name, spec.parents, weights, rng.uniform(-0.2, 0.2),
                 0.3);
  }
  return net;
}

std::vector<bn::Assignment> slice0_evidence(
    const bn::LinearGaussianNetwork& net) {
  std::vector<bn::Assignment> evidence;
  util::Rng rng(5);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const std::string& name = net.name(i);
    if (name.ends_with("@0"))
      evidence.push_back({name, rng.uniform(-1.0, 1.0)});
  }
  return evidence;
}

const std::vector<std::string> kQuery = {"v@2", "y_off@2", "theta@2"};

void bm_exact_posterior(benchmark::State& state) {
  const auto net = synthetic_ads_tbn();
  const auto evidence = slice0_evidence(net);
  for (auto _ : state) {
    auto mean = net.posterior_mean(evidence, kQuery);
    benchmark::DoNotOptimize(mean);
  }
}
BENCHMARK(bm_exact_posterior);

void bm_likelihood_weighting(benchmark::State& state) {
  const auto net = synthetic_ads_tbn();
  const auto evidence = slice0_evidence(net);
  const auto exact = net.posterior_mean(evidence, kQuery);
  util::Rng rng(11);
  bn::SamplingConfig config;
  config.samples = static_cast<std::size_t>(state.range(0));
  double err = 0.0;
  for (auto _ : state) {
    const auto approx =
        bn::likelihood_weighting(net, evidence, kQuery, rng, config);
    benchmark::DoNotOptimize(approx);
    err = std::abs(approx.mean[0] - exact[0]);
  }
  state.counters["abs_err_v"] = err;
}
BENCHMARK(bm_likelihood_weighting)->Arg(100)->Arg(1000)->Arg(10000);

void bm_gibbs(benchmark::State& state) {
  const auto net = synthetic_ads_tbn();
  const auto evidence = slice0_evidence(net);
  const auto exact = net.posterior_mean(evidence, kQuery);
  util::Rng rng(13);
  bn::SamplingConfig config;
  config.samples = static_cast<std::size_t>(state.range(0));
  config.burn_in = config.samples / 10;
  double err = 0.0;
  for (auto _ : state) {
    const auto approx = bn::gibbs(net, evidence, kQuery, rng, config);
    benchmark::DoNotOptimize(approx);
    err = std::abs(approx.mean[0] - exact[0]);
  }
  state.counters["abs_err_v"] = err;
}
BENCHMARK(bm_gibbs)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
