// Compiled BN inference engine vs the naive per-query path on the 4-slice
// ADS DBN -- the hot loop behind the paper's ~3690x acceleration claim.
// The naive path rebuilds the joint Gaussian and refactors the evidence
// block for EVERY candidate fault; the compiled engine does that work once
// per (intervention, evidence, query) structure and answers each query
// with two small mat-vecs. This bench times the raw counterfactual
// inference both ways (the headline speedup), the SafetyPredictor
// end-to-end (which also pays the RK4 stopping-distance integration, so
// its gain is smaller), and the batched sweep API; checks compiled-vs-
// exact agreement to 1e-9; and emits BENCH_bn_compiled.json. Exits
// nonzero if the inference speedup drops below 10x or agreement fails, so
// CI runs it as a smoke test.
//
//   ./bench_bn_compiled [queries] [out.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bn/compiled.h"
#include "bn/dbn.h"
#include "core/bayes_model.h"
#include "core/fault_catalog.h"
#include "core/selector.h"
#include "core/trace.h"
#include "sim/scenario.h"
#include "util/matrix.h"
#include "util/table.h"

using namespace drivefi;

namespace {

struct QueryCase {
  const core::GoldenTrace* trace = nullptr;
  std::size_t scene_index = 0;
  std::string variable;
  double value = 0.0;
  // Prebuilt inference inputs (slice-0 evidence + held intervention), so
  // the timed loops compare inference cost, not input marshalling.
  std::vector<bn::Assignment> evidence_exact;
  std::vector<bn::Assignment> interventions_exact;
  std::vector<double> evidence;
  std::vector<double> interventions;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_queries =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_bn_compiled.json";

  auto suite = sim::base_suite();
  suite.resize(3);
  ads::PipelineConfig config;
  config.seed = 7;
  std::printf("running %zu golden scenarios...\n", suite.size());
  const auto goldens = core::run_golden_suite(suite, config);

  std::printf("fitting the 4-slice ADS DBN...\n");
  core::SafetyPredictorConfig exact_config;
  exact_config.use_compiled = false;
  const core::SafetyPredictor compiled(goldens);          // default engine
  const core::SafetyPredictor exact(compiled.network(), exact_config);
  const bn::LinearGaussianNetwork& net = compiled.network();
  const int slices = compiled.config().slices;
  const auto& names = ads::scene_variable_names();

  const std::vector<std::string> query_nodes = {
      bn::DbnTemplate::slice_name("true_v", slices - 1),
      bn::DbnTemplate::slice_name("true_y_off", slices - 1),
      bn::DbnTemplate::slice_name("true_theta", slices - 1),
      bn::DbnTemplate::slice_name("steer", slices - 1)};

  // Candidate queries straight from the fault catalog: each mapped
  // candidate is one (variable, corrupted value, scene window) do-query,
  // exactly the shape the selection sweep asks.
  const auto catalog =
      core::build_catalog(suite, core::default_target_ranges(), 7.5);
  const auto target_map = core::default_target_to_bn_variable();
  std::vector<QueryCase> cases;
  for (const auto& fault : catalog.faults) {
    const auto map_it = target_map.find(fault.target);
    if (map_it == target_map.end()) continue;
    if (fault.scenario_index >= goldens.size()) continue;
    QueryCase qc;
    qc.trace = &goldens[fault.scenario_index];
    qc.scene_index = fault.scene_index;
    qc.variable = map_it->second;
    qc.value = core::fault_value_to_bn_value(fault, map_it->second);
    // Keep only windows that actually produce a prediction.
    if (!compiled.predict(*qc.trace, qc.scene_index, qc.variable, qc.value))
      continue;
    const auto prev_values =
        ads::scene_variable_values(qc.trace->scenes[qc.scene_index - 1]);
    qc.evidence = prev_values;
    for (std::size_t i = 0; i < names.size(); ++i)
      qc.evidence_exact.push_back(
          {bn::DbnTemplate::slice_name(names[i], 0), prev_values[i]});
    for (int s = 1; s <= slices - 2; ++s) {
      qc.interventions_exact.push_back(
          {bn::DbnTemplate::slice_name(qc.variable, s), qc.value});
      qc.interventions.push_back(qc.value);
    }
    cases.push_back(std::move(qc));
    if (cases.size() >= max_queries) break;
  }
  if (cases.empty()) {
    std::fprintf(stderr, "error: no evaluable queries in the catalog\n");
    return 1;
  }
  std::printf("benchmarking %zu counterfactual do-queries (%zu-node DBN)\n",
              cases.size(), net.node_count());

  // --- headline: raw inference, naive joint()+condition vs compiled ---
  const bn::CompiledNetwork engine(net);
  std::vector<std::string> evidence_nodes;
  for (const auto& v : names)
    evidence_nodes.push_back(bn::DbnTemplate::slice_name(v, 0));
  // One plan per variable, built once and held by pointer -- the
  // per-structure cache is the whole point; the sweep then reuses it for
  // every candidate (exactly how SafetyPredictor holds its plans).
  std::map<std::string, const bn::CompiledQuery*> var_plans;
  for (const auto& [target, variable] : target_map) {
    (void)target;
    if (var_plans.count(variable)) continue;
    std::vector<std::string> intervention_nodes;
    for (int s = 1; s <= slices - 2; ++s)
      intervention_nodes.push_back(bn::DbnTemplate::slice_name(variable, s));
    var_plans[variable] =
        &engine.prepare_do(intervention_nodes, evidence_nodes, query_nodes);
  }
  const auto plan_for_variable = [&](const std::string& variable)
      -> const bn::CompiledQuery& { return *var_plans.at(variable); };

  const auto t_naive = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> naive_out;
  naive_out.reserve(cases.size());
  for (const auto& qc : cases)
    naive_out.push_back(net.do_posterior_mean(qc.interventions_exact,
                                              qc.evidence_exact, query_nodes));
  const double naive_wall = seconds_since(t_naive);

  const auto t_compiled = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> compiled_out;
  compiled_out.reserve(cases.size());
  for (const auto& qc : cases)
    compiled_out.push_back(
        plan_for_variable(qc.variable).mean(qc.interventions, qc.evidence));
  const double compiled_wall = seconds_since(t_compiled);

  double max_abs_diff = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i)
    for (std::size_t j = 0; j < query_nodes.size(); ++j)
      max_abs_diff = std::max(
          max_abs_diff, std::abs(naive_out[i][j] - compiled_out[i][j]));

  const double n = static_cast<double>(cases.size());
  const double naive_us = naive_wall / n * 1e6;
  const double compiled_us = compiled_wall / n * 1e6;
  const double speedup = compiled_wall > 0.0 ? naive_wall / compiled_wall : 0.0;

  // --- SafetyPredictor end-to-end (inference + RK4 stopping model) ---
  double predict_max_abs_diff = 0.0;
  const auto t_predict_exact = std::chrono::steady_clock::now();
  std::vector<core::DeltaPrediction> predict_exact;
  predict_exact.reserve(cases.size());
  for (const auto& qc : cases)
    predict_exact.push_back(
        *exact.predict(*qc.trace, qc.scene_index, qc.variable, qc.value));
  const double predict_exact_wall = seconds_since(t_predict_exact);

  const auto t_predict_compiled = std::chrono::steady_clock::now();
  std::vector<core::DeltaPrediction> predict_compiled;
  predict_compiled.reserve(cases.size());
  for (const auto& qc : cases)
    predict_compiled.push_back(
        *compiled.predict(*qc.trace, qc.scene_index, qc.variable, qc.value));
  const double predict_compiled_wall = seconds_since(t_predict_compiled);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& a = predict_exact[i];
    const auto& b = predict_compiled[i];
    for (double d : {a.delta_lon - b.delta_lon, a.delta_lat - b.delta_lat,
                     a.predicted_v - b.predicted_v,
                     a.predicted_y - b.predicted_y,
                     a.predicted_theta - b.predicted_theta})
      predict_max_abs_diff = std::max(predict_max_abs_diff, std::abs(d));
  }
  const double predict_exact_us = predict_exact_wall / n * 1e6;
  const double predict_compiled_us = predict_compiled_wall / n * 1e6;
  const double predict_speedup = predict_compiled_wall > 0.0
                                     ? predict_exact_wall / predict_compiled_wall
                                     : 0.0;

  // --- batched sweep throughput on one structure ---
  const bn::CompiledQuery& throttle_plan = plan_for_variable("throttle");
  std::vector<std::vector<double>> rows;
  for (const auto& trace : goldens)
    for (std::size_t k = 1; k + 1 < trace.scenes.size(); ++k) {
      if (trace.scenes[k - 1].lead_gap < 0.0) continue;
      rows.push_back(ads::scene_variable_values(trace.scenes[k - 1]));
    }
  util::Matrix evidence(rows.size(), names.size());
  util::Matrix interventions(rows.size(),
                             static_cast<std::size_t>(slices - 2));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < names.size(); ++c)
      evidence(r, c) = rows[r][c];
    const double value = static_cast<double>(r % 11) / 10.0;
    for (std::size_t c = 0; c < interventions.cols(); ++c)
      interventions(r, c) = value;
  }
  std::size_t batch_rows = 0;
  double checksum = 0.0;
  const auto t_batch = std::chrono::steady_clock::now();
  while (batch_rows < 2000000) {
    const util::Matrix means = throttle_plan.mean_batch(interventions, evidence);
    checksum += means(0, 0);
    batch_rows += means.rows();
  }
  const double batch_wall = seconds_since(t_batch);
  const double batch_rate =
      batch_wall > 0.0 ? static_cast<double>(batch_rows) / batch_wall : 0.0;

  util::Table table({"path", "us/query", "queries/s"});
  table.add_row({"naive joint()+condition", util::Table::fmt(naive_us, 2),
                 util::Table::fmt(1e6 / std::max(naive_us, 1e-9), 0)});
  table.add_row({"compiled plan", util::Table::fmt(compiled_us, 3),
                 util::Table::fmt(1e6 / std::max(compiled_us, 1e-9), 0)});
  table.add_row({"compiled batched sweep",
                 util::Table::fmt(1e6 / std::max(batch_rate, 1e-9), 3),
                 util::Table::fmt(batch_rate, 0)});
  table.add_row({"predict() exact engine",
                 util::Table::fmt(predict_exact_us, 2),
                 util::Table::fmt(1e6 / std::max(predict_exact_us, 1e-9), 0)});
  table.add_row({"predict() compiled engine",
                 util::Table::fmt(predict_compiled_us, 2),
                 util::Table::fmt(1e6 / std::max(predict_compiled_us, 1e-9),
                                  0)});
  table.print("compiled BN inference vs naive per-query path");
  std::printf("inference speedup: %.1fx (predict() end-to-end: %.1fx -- "
              "includes the RK4 stopping model)\n",
              speedup, predict_speedup);
  std::printf("max |compiled - naive|: %.3g inference, %.3g predict "
              "(checksum %g)\n",
              max_abs_diff, predict_max_abs_diff, checksum);

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"bn_compiled\",\n"
      << "  \"bn_nodes\": " << net.node_count() << ",\n"
      << "  \"slices\": " << slices << ",\n"
      << "  \"queries\": " << cases.size() << ",\n"
      << "  \"naive_us_per_query\": " << naive_us << ",\n"
      << "  \"compiled_us_per_query\": " << compiled_us << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"predict_naive_us_per_query\": " << predict_exact_us << ",\n"
      << "  \"predict_compiled_us_per_query\": " << predict_compiled_us
      << ",\n"
      << "  \"predict_speedup\": " << predict_speedup << ",\n"
      << "  \"batch_rows\": " << batch_rows << ",\n"
      << "  \"batch_candidates_per_second\": " << batch_rate << ",\n"
      << "  \"max_abs_diff\": " << max_abs_diff << ",\n"
      << "  \"predict_max_abs_diff\": " << predict_max_abs_diff << "\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (max_abs_diff > 1e-9 || predict_max_abs_diff > 1e-9) {
    std::fprintf(stderr, "FATAL: compiled engine diverged from the exact "
                         "solver (%.3g / %.3g > 1e-9)\n",
                 max_abs_diff, predict_max_abs_diff);
    return 1;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr, "FATAL: compiled speedup %.1fx below the 10x "
                         "floor\n", speedup);
    return 1;
  }
  return 0;
}
