// Shared-prefix replay-tree bench: runs the E3 random campaign through the
// flat fork-from-golden path (PR 4) and the replay tree, in two
// checkpoint-memory regimes, verifies byte-identity at several thread
// counts, and emits BENCH_replay_tree.json. Exits nonzero on any
// divergence or below the speedup floor, so CI can gate on it.
//
// Honest normalization -- two numbers, deliberately labeled:
//
//   * tree_vs_fork_stride4_speedup: tree vs flat fork at the DEFAULT dense
//     checkpoint stride (4). The flat path already amortizes nearly all
//     shared-prefix work here (a fork re-simulates at most stride-1 scenes,
//     ~0.5 ms of a ~27 ms replay), so the tree's headroom is small; this
//     number is a regression guard (must stay >= 0.95x), not the headline.
//
//   * memory_matched_speedup: tree vs flat fork at SPARSE checkpoints (one
//     per scenario), i.e. equal golden-checkpoint memory. Here the flat
//     path must re-simulate each tail's whole prefix while the tree
//     materializes it once per group -- this is the regime the tree exists
//     for, and the >= floor gate applies to it.
//
//   ./bench_replay_tree [n_value_runs] [out.json] [speedup_floor]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/jsonl.h"
#include "core/replay_plan.h"
#include "core/result_sink.h"
#include "obs/metrics.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

// One checkpoint per scenario (scene 0 only): the sparse-memory regime.
constexpr std::size_t kSparseStride = 1'000'000;

core::Experiment make_engine(const std::vector<sim::Scenario>& suite,
                             bool tree, std::size_t stride, unsigned threads,
                             std::size_t max_live_snapshots = 0) {
  ads::PipelineConfig config;
  config.seed = 101;  // matches bench_e3_random_fi
  core::ExperimentOptions options;
  options.fork_replays = true;
  options.checkpoint_stride = stride;
  options.replay_tree = tree;
  options.max_live_snapshots = max_live_snapshots;
  options.executor.threads = threads;
  return core::Experiment(suite, config, {}, options);
}

struct Measurement {
  double wall_seconds = 0.0;
  std::string fingerprint;
  std::string jsonl;
  std::size_t spliced = 0;
};

// Runs the E3 campaign (values then bitflips) through one engine,
// capturing wall time, the stats fingerprint, and scrubbed JSONL.
Measurement measure(const core::Experiment& engine,
                    const core::FaultModel& values,
                    const core::FaultModel& bitflips) {
  Measurement m;
  const std::size_t spliced_before = engine.spliced_runs_executed();
  std::ostringstream out;
  core::JsonlSink sink(out);
  std::vector<core::ResultSink*> sinks = {&sink};
  const core::CampaignStats a = engine.run(values, sinks);
  const core::CampaignStats b = engine.run(bitflips, sinks);
  m.wall_seconds = a.wall_seconds + b.wall_seconds;
  m.fingerprint = core::campaign_fingerprint(a) + core::campaign_fingerprint(b);
  m.jsonl = core::scrub_wall_seconds(out.str());
  m.spliced = engine.spliced_runs_executed() - spliced_before;
  return m;
}

std::size_t checkpoint_bytes(const core::Experiment& engine) {
  std::size_t total = 0;
  for (const auto& golden : engine.goldens())
    for (const auto& ck : golden.checkpoints) total += ck.approx_size_bytes();
  return total;
}

std::size_t snapshot_demand(const core::Experiment& engine,
                            const core::FaultModel& model) {
  std::vector<std::size_t> indices(model.run_count());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return core::build_replay_plan(model, indices, engine).snapshot_demand;
}

std::uint64_t counter(const char* name) {
  return obs::metrics().counter(name).value();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_value =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_replay_tree.json";
  const double floor = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::size_t n_bits = n_value / 2;

  const auto suite = sim::base_suite();
  const core::RandomValueModel values(n_value, 999);
  const core::BitFlipModel bitflips(n_bits, 555);
  std::printf("E3 random campaign: %zu value + %zu bit-flip runs over %zu "
              "scenarios\n",
              n_value, n_bits, suite.size());

  // --- Dense-checkpoint regime (default stride 4) -------------------------
  std::printf("dense regime (stride 4): flat fork vs tree...\n");
  const core::Experiment fork4 = make_engine(suite, false, 4, 1);
  const core::Experiment tree4 = make_engine(suite, true, 4, 1);
  const Measurement fork4_m = measure(fork4, values, bitflips);
  const Measurement tree4_m = measure(tree4, values, bitflips);
  const double dense_speedup = tree4_m.wall_seconds > 0.0
                                   ? fork4_m.wall_seconds / tree4_m.wall_seconds
                                   : 0.0;
  bool identical = fork4_m.fingerprint == tree4_m.fingerprint &&
                   fork4_m.jsonl == tree4_m.jsonl;
  std::printf("  fork@4 %.2fs  tree@4 %.2fs  speedup %.2fx  %s\n",
              fork4_m.wall_seconds, tree4_m.wall_seconds, dense_speedup,
              identical ? "identical" : "DIVERGED");

  // Thread-count identity sweep against the same baseline.
  bool threads_identical = true;
  for (const unsigned threads : {2u, 8u}) {
    const core::Experiment engine = make_engine(suite, true, 4, threads);
    const Measurement m = measure(engine, values, bitflips);
    const bool same =
        m.fingerprint == fork4_m.fingerprint && m.jsonl == fork4_m.jsonl;
    threads_identical &= same;
    std::printf("  tree@4 x%u threads: %.2fs  %s\n", threads, m.wall_seconds,
                same ? "identical" : "DIVERGED");
  }

  // --- Memory-matched regime (one checkpoint per scenario) ----------------
  std::printf("sparse regime (one checkpoint/scenario): flat fork vs tree...\n");
  const core::Experiment fork_sparse =
      make_engine(suite, false, kSparseStride, 1);
  const core::Experiment tree_sparse =
      make_engine(suite, true, kSparseStride, 1);
  const std::uint64_t trunk_scenes_before =
      counter("replay_tree.trunk_scenes_simulated");
  const std::uint64_t reuse_before = counter("replay_tree.prefix_scenes_reused");
  const Measurement fork_sparse_m = measure(fork_sparse, values, bitflips);
  const Measurement tree_sparse_m = measure(tree_sparse, values, bitflips);
  const std::uint64_t trunk_scenes =
      counter("replay_tree.trunk_scenes_simulated") - trunk_scenes_before;
  const std::uint64_t prefix_reused =
      counter("replay_tree.prefix_scenes_reused") - reuse_before;
  const double matched_speedup =
      tree_sparse_m.wall_seconds > 0.0
          ? fork_sparse_m.wall_seconds / tree_sparse_m.wall_seconds
          : 0.0;
  const bool sparse_identical =
      fork_sparse_m.fingerprint == fork4_m.fingerprint &&
      tree_sparse_m.fingerprint == fork4_m.fingerprint &&
      fork_sparse_m.jsonl == fork4_m.jsonl &&
      tree_sparse_m.jsonl == fork4_m.jsonl;
  std::printf("  fork@sparse %.2fs  tree@sparse %.2fs  speedup %.2fx "
              "(floor %.1fx)  %s\n",
              fork_sparse_m.wall_seconds, tree_sparse_m.wall_seconds,
              matched_speedup, floor,
              sparse_identical ? "identical" : "DIVERGED");
  std::printf("  trunk scenes simulated %llu, prefix scenes reused %llu\n",
              static_cast<unsigned long long>(trunk_scenes),
              static_cast<unsigned long long>(prefix_reused));

  // --- Memory/speed trade-off: capped live snapshots ----------------------
  const std::size_t cap = 2;
  const core::Experiment tree_capped =
      make_engine(suite, true, kSparseStride, 1, cap);
  const std::uint64_t evictions_before =
      counter("replay_tree.snapshot_evictions");
  const std::uint64_t fallbacks_before = counter("replay_tree.fallback_tails");
  const Measurement capped_m = measure(tree_capped, values, bitflips);
  const std::uint64_t evictions =
      counter("replay_tree.snapshot_evictions") - evictions_before;
  const std::uint64_t fallbacks =
      counter("replay_tree.fallback_tails") - fallbacks_before;
  const bool capped_identical = capped_m.fingerprint == fork4_m.fingerprint &&
                                capped_m.jsonl == fork4_m.jsonl;
  std::printf("  tree@sparse cap=%zu: %.2fs  evictions %llu  fallback tails "
              "%llu  %s\n",
              cap, capped_m.wall_seconds,
              static_cast<unsigned long long>(evictions),
              static_cast<unsigned long long>(fallbacks),
              capped_identical ? "identical" : "DIVERGED");

  // --- Memory accounting ---------------------------------------------------
  const std::size_t fork4_ck_bytes = checkpoint_bytes(fork4);
  const std::size_t sparse_ck_bytes = checkpoint_bytes(fork_sparse);
  const std::size_t demand =
      snapshot_demand(tree_sparse, values) + snapshot_demand(tree_sparse, bitflips);
  const std::size_t snapshot_bytes =
      fork4.goldens().empty() || fork4.goldens()[0].checkpoints.empty()
          ? 0
          : fork4.goldens()[0].checkpoints[0].approx_size_bytes();
  std::printf("  checkpoint memory: stride-4 %.1f KiB, sparse %.1f KiB; "
              "uncapped tree demand %zu snapshots (~%.1f KiB)\n",
              fork4_ck_bytes / 1024.0, sparse_ck_bytes / 1024.0, demand,
              demand * snapshot_bytes / 1024.0);

  identical = identical && threads_identical && sparse_identical &&
              capped_identical;

  // --- JSON ---------------------------------------------------------------
  std::ofstream json(out_path);
  json << "{\n";
  json << "  \"bench\": \"replay_tree\",\n";
  json << "  \"runs\": " << (n_value + n_bits) << ",\n";
  json << "  \"engines\": {\n";
  json << "    \"fork_stride4\": {\"wall_seconds\": " << fork4_m.wall_seconds
       << ", \"spliced\": " << fork4_m.spliced
       << ", \"checkpoint_bytes\": " << fork4_ck_bytes << "},\n";
  json << "    \"tree_stride4\": {\"wall_seconds\": " << tree4_m.wall_seconds
       << ", \"spliced\": " << tree4_m.spliced << "},\n";
  json << "    \"fork_sparse\": {\"wall_seconds\": "
       << fork_sparse_m.wall_seconds
       << ", \"spliced\": " << fork_sparse_m.spliced
       << ", \"checkpoint_bytes\": " << sparse_ck_bytes << "},\n";
  json << "    \"tree_sparse\": {\"wall_seconds\": "
       << tree_sparse_m.wall_seconds
       << ", \"spliced\": " << tree_sparse_m.spliced
       << ", \"trunk_scenes_simulated\": " << trunk_scenes
       << ", \"prefix_scenes_reused\": " << prefix_reused
       << ", \"snapshot_demand\": " << demand
       << ", \"snapshot_demand_bytes\": " << demand * snapshot_bytes << "},\n";
  json << "    \"tree_sparse_capped\": {\"wall_seconds\": "
       << capped_m.wall_seconds << ", \"max_live_snapshots\": " << cap
       << ", \"snapshot_evictions\": " << evictions
       << ", \"fallback_tails\": " << fallbacks << "}\n";
  json << "  },\n";
  json << "  \"tree_vs_fork_stride4_speedup\": " << dense_speedup << ",\n";
  json << "  \"memory_matched_speedup\": " << matched_speedup << ",\n";
  json << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  json << "  \"speedup_floor\": " << floor << ",\n";
  json << "  \"normalization\": \"memory_matched_speedup compares tree vs "
          "flat fork at one golden checkpoint per scenario (equal checkpoint "
          "memory; the flat path re-simulates each tail's whole prefix). "
          "tree_vs_fork_stride4_speedup compares at the default dense stride, "
          "where stride-4 checkpoints already amortize most prefix work and "
          "the tree is only required not to regress (>= 0.95x).\"\n";
  json << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: replay tree diverged from the flat fork path "
                         "(results must be bit-identical)\n");
    return 1;
  }
  if (dense_speedup < 0.95) {
    std::fprintf(stderr, "FAIL: tree regressed the dense-checkpoint campaign "
                         "(%.2fx < 0.95x of flat fork at stride 4)\n",
                 dense_speedup);
    return 1;
  }
  if (matched_speedup < floor) {
    std::fprintf(stderr, "FAIL: memory-matched speedup %.2fx below the %.1fx "
                         "floor\n",
                 matched_speedup, floor);
    return 1;
  }
  std::printf("OK: %.2fx memory-matched, %.2fx at dense stride, tree == flat\n",
              matched_speedup, dense_speedup);
  return 0;
}
