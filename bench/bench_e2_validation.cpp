// E2 -- Validation of Bayesian-selected faults (paper: 561 selected, 460
// manifested as safety hazards, concentrated in 68 of 7200 scenes). We
// select over the base suite, replay the selected faults in full
// simulation, and report precision and the scene concentration.
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/bayes_model.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/report.h"
#include "core/selector.h"
#include "sim/scenario.h"
#include "util/table.h"

using namespace drivefi;

int main() {
  std::printf("E2: do Bayesian-selected faults manifest as hazards?\n");

  auto suite = sim::base_suite();
  ads::PipelineConfig config;
  config.seed = 29;
  const core::Experiment experiment(suite, config);
  const auto& goldens = experiment.goldens();

  const core::SafetyPredictor predictor(goldens);
  const core::BayesianFaultSelector selector(predictor);
  const auto catalog =
      core::build_catalog(suite, core::default_target_ranges(), 7.5);
  const core::SelectionResult selection = selector.select(catalog, goldens);

  std::printf("selected %zu critical faults out of %zu candidates\n",
              selection.critical.size(), selection.candidates_total);

  // Replay budget: cap to keep the bench tractable; precision over the
  // replayed subset estimates the paper's 460/561 = 82%.
  const std::size_t replay_budget =
      std::min<std::size_t>(120, selection.critical.size());
  std::vector<core::SelectedFault> replayed(
      selection.critical.begin(), selection.critical.begin() + replay_budget);
  const core::CampaignStats stats =
      experiment.run(core::SelectedFaultModel(replayed));

  core::outcome_table(stats).print("E2: replay outcomes");
  core::validation_table(selection, stats, catalog.scene_count)
      .print("E2: validation (paper: 561 selected, 460 hazards, 68/7200 "
             "scenes)");

  // Scene concentration: hazards per distinct scene.
  util::Table conc({"metric", "value"});
  conc.add_row({"hazards", util::Table::fmt_int(
                               static_cast<long long>(stats.hazard))});
  conc.add_row({"distinct hazard scenes",
                util::Table::fmt_int(
                    static_cast<long long>(stats.hazard_scenes.size()))});
  conc.add_row(
      {"scene concentration (hazards/scene)",
       util::Table::fmt(stats.hazard_scenes.empty()
                            ? 0.0
                            : static_cast<double>(stats.hazard) /
                                  static_cast<double>(stats.hazard_scenes.size()),
                        2)});
  conc.print("E2: hazard concentration");

  core::per_target_table(stats).print("E2: hazards by corrupted variable");
  return 0;
}
