// Observability overhead gate: the metrics registry, timing spans, and
// snapshot sink must cost (almost) nothing. Runs the same random-value
// campaign with observability fully ON (live trace session + per-second
// metrics snapshot sink) and fully OFF, alternating repetitions to cancel
// thermal/cache drift, compares best-of wall times, and verifies the
// campaign fingerprints are identical both ways (the inertness contract,
// also enforced by tests/determinism_test.cpp). Emits
// BENCH_observability.json and exits nonzero when the relative overhead
// exceeds the gate (default 2%) or any fingerprint diverges, so CI holds
// the instrumentation to its "cheap enough to leave on" promise.
//
//   ./bench_observability [runs] [out.json] [max_overhead]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_stats.h"
#include "core/experiment.h"
#include "core/fault_model.h"
#include "core/progress.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/scenario.h"

using namespace drivefi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 64;
  const std::string out_path =
      argc > 2 ? argv[2] : "BENCH_observability.json";
  const double max_overhead = argc > 3 ? std::atof(argv[3]) : 0.02;
  constexpr int kReps = 5;

  ads::PipelineConfig config;
  config.seed = 11;
  const core::Experiment experiment(sim::base_suite(), config, {}, {});
  const core::RandomValueModel model(runs, 2024);
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "bench_observability_trace.json")
          .string();

  std::printf("observability overhead bench: %zu runs x %d reps each way\n",
              runs, kReps);

  // Warm-up rep (page cache, allocator, branch predictors) -- not timed.
  experiment.run(model);

  std::vector<double> baseline, instrumented;
  std::set<std::string> fingerprints;
  std::uint64_t trace_events = 0;
  std::size_t snapshot_lines = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      const core::CampaignStats stats = experiment.run(model);
      baseline.push_back(seconds_since(t0));
      fingerprints.insert(core::campaign_fingerprint(stats));
    }
    {
      obs::metrics().reset();
      obs::start_tracing(trace_path);
      std::ostringstream metrics_out;
      core::MetricsSnapshotSink sink(metrics_out, /*interval_seconds=*/1.0);
      std::vector<core::ResultSink*> sinks = {&sink};
      const auto t0 = std::chrono::steady_clock::now();
      const core::CampaignStats stats = experiment.run(model, sinks);
      instrumented.push_back(seconds_since(t0));
      trace_events = obs::trace_events_written();
      obs::stop_tracing();
      snapshot_lines = sink.snapshots_written();
      fingerprints.insert(core::campaign_fingerprint(stats));
    }
    std::printf("  rep %d: baseline %.3fs  instrumented %.3fs\n", rep + 1,
                baseline.back(), instrumented.back());
  }
  std::filesystem::remove(trace_path);

  // Best-of comparison: min is the noise-robust estimator for "how fast
  // can this go", which is what an overhead gate should compare.
  const double best_base = *std::min_element(baseline.begin(), baseline.end());
  const double best_inst =
      *std::min_element(instrumented.begin(), instrumented.end());
  const double overhead = best_inst / best_base - 1.0;
  const bool identical = fingerprints.size() == 1;

  std::printf("  best baseline     %.4fs\n", best_base);
  std::printf("  best instrumented %.4fs  (%llu trace events, %zu metrics "
              "snapshots)\n",
              best_inst, static_cast<unsigned long long>(trace_events),
              snapshot_lines);
  std::printf("  overhead          %+.2f%%  (gate %.2f%%)\n", overhead * 100,
              max_overhead * 100);
  std::printf("  fingerprints identical: %s\n", identical ? "yes" : "NO");

  std::ofstream json(out_path);
  json << "{\n";
  json << "  \"bench\": \"observability\",\n";
  json << "  \"runs\": " << runs << ",\n";
  json << "  \"reps\": " << kReps << ",\n";
  json << "  \"best_baseline_seconds\": " << best_base << ",\n";
  json << "  \"best_instrumented_seconds\": " << best_inst << ",\n";
  json << "  \"overhead\": " << overhead << ",\n";
  json << "  \"max_overhead\": " << max_overhead << ",\n";
  json << "  \"trace_events\": " << trace_events << ",\n";
  json << "  \"metrics_snapshots\": " << snapshot_lines << ",\n";
  json << "  \"fingerprints_identical\": " << (identical ? "true" : "false")
       << "\n";
  json << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: observability changed campaign results (fingerprints "
                 "diverged; the inertness contract is broken)\n");
    return 1;
  }
  if (overhead > max_overhead) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the %.2f%% "
                 "gate\n",
                 overhead * 100, max_overhead * 100);
    return 1;
  }
  return 0;
}
