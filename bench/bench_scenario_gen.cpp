// Scenario-subsystem throughput: scenarios/sec for procedural generation
// (uniform and coverage-guided), DSL serialization, and DSL parsing, over
// a sampled corpus. Emits a BENCH_scenario_gen.json summary so later perf
// PRs have a trajectory to beat.
//
//   ./bench_scenario_gen [count] [out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/coverage.h"
#include "scenario/dsl.h"
#include "scenario/generators.h"
#include "util/table.h"

using namespace drivefi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested = argc > 1 ? std::atoll(argv[1]) : 20000;
  if (requested <= 0) {
    std::fprintf(stderr, "usage: %s [count > 0] [out.json]\n", argv[0]);
    return 2;
  }
  const auto count = static_cast<std::size_t>(requested);
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_scenario_gen.json";

  const scenario::ScenarioSampler sampler(1234);

  auto start = std::chrono::steady_clock::now();
  const std::vector<sim::Scenario> suite = sampler.sample_suite(count);
  const double gen_s = seconds_since(start);

  scenario::ScenarioCoverage coverage;
  start = std::chrono::steady_clock::now();
  const std::vector<sim::Scenario> guided =
      sampler.sample_covering(count, coverage);
  const double guided_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const std::string text = scenario::serialize_suite(suite);
  const double ser_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const std::vector<sim::Scenario> parsed = scenario::parse_suite(text);
  const double parse_s = seconds_since(start);

  if (parsed != suite) {
    std::fprintf(stderr, "FATAL: corpus did not round-trip through the DSL\n");
    return 1;
  }

  const auto rate = [count](double s) {
    return s > 0.0 ? static_cast<double>(count) / s : 0.0;
  };
  util::Table table({"stage", "wall (s)", "scenarios/s"});
  table.add_row({"generate (uniform)", util::Table::fmt(gen_s, 3),
                 util::Table::fmt(rate(gen_s), 0)});
  table.add_row({"generate (coverage-guided)", util::Table::fmt(guided_s, 3),
                 util::Table::fmt(rate(guided_s), 0)});
  table.add_row({"serialize", util::Table::fmt(ser_s, 3),
                 util::Table::fmt(rate(ser_s), 0)});
  table.add_row({"parse", util::Table::fmt(parse_s, 3),
                 util::Table::fmt(rate(parse_s), 0)});
  table.print("scenario generation + DSL throughput (" +
              std::to_string(count) + " scenarios)");
  std::printf("corpus: %zu bytes of .scn text; coverage %zu/%zu cells after "
              "guided pass\n",
              text.size(), coverage.occupied_cells(), coverage.total_cells());

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"scenario_gen\",\n  \"count\": " << count
      << ",\n  \"scn_bytes\": " << text.size()
      << ",\n  \"coverage_cells_occupied\": " << coverage.occupied_cells()
      << ",\n  \"coverage_cells_total\": " << coverage.total_cells()
      << ",\n  \"rows\": [\n"
      << "    {\"stage\": \"generate_uniform\", \"wall_seconds\": " << gen_s
      << ", \"scenarios_per_second\": " << rate(gen_s) << "},\n"
      << "    {\"stage\": \"generate_covering\", \"wall_seconds\": "
      << guided_s << ", \"scenarios_per_second\": " << rate(guided_s)
      << "},\n"
      << "    {\"stage\": \"serialize\", \"wall_seconds\": " << ser_s
      << ", \"scenarios_per_second\": " << rate(ser_s) << "},\n"
      << "    {\"stage\": \"parse\", \"wall_seconds\": " << parse_s
      << ", \"scenarios_per_second\": " << rate(parse_s) << "}\n  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
